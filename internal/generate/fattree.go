// Package generate produces the evaluation workloads of the paper (§8):
// synthetic vanilla fat-tree configurations with PC1-PC4 policies and the
// corresponding "breaker", a 96-network synthetic data-center corpus
// calibrated to the paper's published statistics, and a hand-written-
// repair (operator) simulator used as the Figure 11 baseline.
package generate

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"strings"

	"repro/internal/config"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/topology"
)

// Instance is a generated workload: configurations, the extracted
// network, and the policy specification the network must satisfy.
type Instance struct {
	Name     string
	Configs  map[string]*config.Config
	Network  *topology.Network
	Policies []policy.Policy
}

// Rebuild re-extracts the network from the (possibly mutated)
// configurations and remaps policy subnet/device references onto it.
func (inst *Instance) Rebuild() error {
	var cfgs []*config.Config
	names := make([]string, 0, len(inst.Configs))
	for name := range inst.Configs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		// Round-trip through text so extraction sees exactly what a
		// parsed file would contain.
		c, err := config.Parse(name, inst.Configs[name].Print())
		if err != nil {
			return err
		}
		cfgs = append(cfgs, c)
		inst.Configs[name] = c
	}
	n, err := config.Extract(cfgs)
	if err != nil {
		return err
	}
	remapped, err := RemapPolicies(inst.Policies, n)
	if err != nil {
		return err
	}
	inst.Network = n
	inst.Policies = remapped
	return nil
}

// RemapPolicies rebinds policies' subnet pointers to the given network.
func RemapPolicies(ps []policy.Policy, n *topology.Network) ([]policy.Policy, error) {
	out := make([]policy.Policy, len(ps))
	for i, p := range ps {
		src := n.Subnet(p.TC.Src.Name)
		dst := n.Subnet(p.TC.Dst.Name)
		if src == nil || dst == nil {
			return nil, fmt.Errorf("generate: policy %s references unknown subnet", p)
		}
		p.TC = topology.TrafficClass{Src: src, Dst: dst}
		out[i] = p
	}
	return out, nil
}

// Harc builds the instance's HARC.
func (inst *Instance) Harc() *harc.HARC { return harc.Build(inst.Network) }

// Violations returns the currently violated policies.
func (inst *Instance) Violations() []policy.Policy {
	return policy.Violations(inst.Harc(), inst.Policies)
}

// FatTreeOptions parameterizes the fat-tree workload.
type FatTreeOptions struct {
	K              int // port count (even, >= 4): 4 → 20 routers, 6 → 45
	SubnetsPerEdge int // host subnets per edge switch (default 1)
	// Policy counts by class; policies are assigned to distinct inter-pod
	// traffic classes chosen by the seed.
	PC1, PC2, PC3, PC4 int
	Seed               int64
}

// fatTreeLayout captures the structural names for generation.
type fatTreeLayout struct {
	k       int
	cores   []string
	aggs    [][]string // [pod][i]
	edges   [][]string // [pod][i]
	subnets []struct {
		name   string
		prefix netip.Prefix
		pod    int
		edge   int
	}
}

func layoutFatTree(k, subnetsPerEdge int) *fatTreeLayout {
	half := k / 2
	l := &fatTreeLayout{k: k}
	for i := 0; i < half*half; i++ {
		l.cores = append(l.cores, fmt.Sprintf("core%d", i))
	}
	for p := 0; p < k; p++ {
		var aggs, edges []string
		for i := 0; i < half; i++ {
			aggs = append(aggs, fmt.Sprintf("agg%d-%d", p, i))
			edges = append(edges, fmt.Sprintf("edge%d-%d", p, i))
		}
		l.aggs = append(l.aggs, aggs)
		l.edges = append(l.edges, edges)
	}
	idx := 0
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for s := 0; s < subnetsPerEdge; s++ {
				l.subnets = append(l.subnets, struct {
					name   string
					prefix netip.Prefix
					pod    int
					edge   int
				}{
					name:   fmt.Sprintf("h%d-%d-%d", p, e, s),
					prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(idx / 250), byte(idx % 250), 0}), 24),
					pod:    p,
					edge:   e,
				})
				idx++
			}
		}
	}
	return l
}

// ftBuilder accumulates per-device configuration text.
type cfgBuilder struct {
	host     string
	lines    []string
	intfIdx  int
	acls     map[string][]string // name → entries
	aclOrder []string
	router   []string
}

func newCfgBuilder(host string) *cfgBuilder {
	return &cfgBuilder{host: host, acls: map[string][]string{}}
}

// addIntf emits an interface stanza and returns its name.
func (b *cfgBuilder) addIntf(desc string, addr netip.Addr, bits int, extra ...string) string {
	name := fmt.Sprintf("eth%d", b.intfIdx)
	b.intfIdx++
	b.lines = append(b.lines, "!", "interface "+name)
	if desc != "" {
		b.lines = append(b.lines, " description "+desc)
	}
	mask := net4Mask(bits)
	b.lines = append(b.lines, fmt.Sprintf(" ip address %s %s", addr, mask))
	for _, x := range extra {
		b.lines = append(b.lines, " "+x)
	}
	return name
}

func net4Mask(bits int) string {
	var v uint32
	if bits > 0 {
		v = ^uint32(0) << (32 - bits)
	}
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func (b *cfgBuilder) text() string {
	var sb strings.Builder
	sb.WriteString("hostname " + b.host + "\n")
	for _, l := range b.lines {
		sb.WriteString(l + "\n")
	}
	for _, name := range b.aclOrder {
		sb.WriteString("!\nip access-list extended " + name + "\n")
		for _, e := range b.acls[name] {
			sb.WriteString(" " + e + "\n")
		}
	}
	sb.WriteString("!\nrouter ospf 1\n redistribute connected\n network 10.0.0.0 0.255.255.255 area 0\n")
	for _, l := range b.router {
		sb.WriteString(" " + l + "\n")
	}
	return sb.String()
}

// FatTree generates an unbroken fat-tree workload whose configurations
// satisfy the generated policies, matching the paper's synthetic setup:
// ACLs on core switches block PC1 pairs, waypoints sit on half the
// core-aggregation links with ACLs steering PC2 pairs through them, and
// low costs on core0's links induce PC4 primary paths.
func FatTree(opts FatTreeOptions) (*Instance, error) {
	if opts.K < 4 || opts.K%2 != 0 {
		return nil, fmt.Errorf("generate: fat-tree K must be even and >= 4, got %d", opts.K)
	}
	if opts.SubnetsPerEdge < 1 {
		opts.SubnetsPerEdge = 1
	}
	half := opts.K / 2
	l := layoutFatTree(opts.K, opts.SubnetsPerEdge)
	rng := rand.New(rand.NewSource(opts.Seed))

	builders := map[string]*cfgBuilder{}
	for _, c := range l.cores {
		builders[c] = newCfgBuilder(c)
	}
	for p := 0; p < opts.K; p++ {
		for i := 0; i < half; i++ {
			builders[l.aggs[p][i]] = newCfgBuilder(l.aggs[p][i])
			builders[l.edges[p][i]] = newCfgBuilder(l.edges[p][i])
		}
	}

	// Choose policy traffic classes among distinct inter-pod subnet pairs.
	type pair struct{ a, b int } // indices into l.subnets
	var interPod []pair
	for i := range l.subnets {
		for j := range l.subnets {
			if i != j && l.subnets[i].pod != l.subnets[j].pod {
				interPod = append(interPod, pair{i, j})
			}
		}
	}
	rng.Shuffle(len(interPod), func(i, j int) { interPod[i], interPod[j] = interPod[j], interPod[i] })
	need := opts.PC1 + opts.PC2 + opts.PC3 + opts.PC4
	if need > len(interPod) {
		return nil, fmt.Errorf("generate: %d policies requested but only %d inter-pod traffic classes exist", need, len(interPod))
	}
	pc1Pairs := interPod[:opts.PC1]
	pc2Pairs := interPod[opts.PC1 : opts.PC1+opts.PC2]
	pc3Pairs := interPod[opts.PC1+opts.PC2 : opts.PC1+opts.PC2+opts.PC3]
	pc4Pairs := interPod[opts.PC1+opts.PC2+opts.PC3 : need]

	usePC4 := opts.PC4 > 0
	// Waypoint cores: the first half of the core switches carry
	// middleboxes on all their aggregation links.
	waypointCore := func(ci int) bool { return ci < len(l.cores)/2 }

	// Core ACL entries: denies for PC1 pairs (on every core) and denies
	// for PC2 pairs on non-waypoint cores.
	coreDeny := map[string][]string{} // core name → deny lines
	denyLine := func(a, b int) string {
		sa, sb := l.subnets[a], l.subnets[b]
		return fmt.Sprintf("deny ip %s %s %s %s",
			sa.prefix.Addr(), wild4(sa.prefix.Bits()), sb.prefix.Addr(), wild4(sb.prefix.Bits()))
	}
	for _, pr := range pc1Pairs {
		for _, c := range l.cores {
			coreDeny[c] = append(coreDeny[c], denyLine(pr.a, pr.b))
		}
	}
	for _, pr := range pc2Pairs {
		for ci, c := range l.cores {
			if !waypointCore(ci) {
				coreDeny[c] = append(coreDeny[c], denyLine(pr.a, pr.b))
			}
		}
	}

	// Wire links. Address space: 10.x.y.0/24 per link.
	linkIdx := 0
	nextLink := func() (netip.Addr, netip.Addr, int) {
		a := netip.AddrFrom4([4]byte{10, byte(linkIdx / 250), byte(linkIdx % 250), 1})
		b := netip.AddrFrom4([4]byte{10, byte(linkIdx / 250), byte(linkIdx % 250), 2})
		linkIdx++
		return a, b, 24
	}

	costLine := func(cost int) string { return fmt.Sprintf("ip ospf cost %d", cost) }
	for p := 0; p < opts.K; p++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				ea, aa, bits := nextLink()
				builders[l.edges[p][e]].addIntf("Link-to-"+l.aggs[p][a], ea, bits, costLine(10))
				builders[l.aggs[p][a]].addIntf("Link-to-"+l.edges[p][e], aa, bits, costLine(10))
			}
		}
		for a := 0; a < half; a++ {
			for j := 0; j < half; j++ {
				ci := a*half + j
				core := l.cores[ci]
				aa, ca, bits := nextLink()
				cost := 10
				if usePC4 && ci == 0 {
					cost = 1 // induce primary paths via core0
				}
				aggExtras := []string{costLine(cost)}
				coreExtras := []string{costLine(cost), fmt.Sprintf("ip access-group CORE-ACL in")}
				if waypointCore(ci) {
					coreExtras = append(coreExtras, "waypoint")
				}
				builders[l.aggs[p][a]].addIntf("Link-to-"+core, aa, bits, aggExtras...)
				builders[core].addIntf("Link-to-"+l.aggs[p][a], ca, bits, coreExtras...)
			}
		}
	}
	// Host subnets on edge switches.
	for _, s := range l.subnets {
		b := builders[l.edges[s.pod][s.edge]]
		intf := b.addIntf(config.SubnetDescriptionPrefix+s.name, s.prefix.Addr().Next(), s.prefix.Bits())
		b.router = append(b.router, "passive-interface "+intf)
	}
	// Core ACLs (every core has one, even if it only permits).
	for _, c := range l.cores {
		b := builders[c]
		b.aclOrder = append(b.aclOrder, "CORE-ACL")
		b.acls["CORE-ACL"] = append(coreDeny[c], "permit ip any any")
	}

	inst := &Instance{Name: fmt.Sprintf("fattree-k%d", opts.K), Configs: map[string]*config.Config{}}
	for name, b := range builders {
		cfg, err := config.Parse(name+".cfg", b.text())
		if err != nil {
			return nil, fmt.Errorf("generate: fat-tree config %s: %w", name, err)
		}
		inst.Configs[name] = cfg
	}
	if err := inst.Rebuild(); err != nil {
		return nil, err
	}

	// Build the policy list against the extracted network.
	n := inst.Network
	tcOf := func(pr pair) topology.TrafficClass {
		return topology.TrafficClass{Src: n.Subnet(l.subnets[pr.a].name), Dst: n.Subnet(l.subnets[pr.b].name)}
	}
	var ps []policy.Policy
	for _, pr := range pc1Pairs {
		ps = append(ps, policy.Policy{Kind: policy.AlwaysBlocked, TC: tcOf(pr)})
	}
	for _, pr := range pc2Pairs {
		ps = append(ps, policy.Policy{Kind: policy.AlwaysWaypoint, TC: tcOf(pr)})
	}
	for _, pr := range pc3Pairs {
		ps = append(ps, policy.Policy{Kind: policy.KReachable, K: 2, TC: tcOf(pr)})
	}
	for _, pr := range pc4Pairs {
		sa, sb := l.subnets[pr.a], l.subnets[pr.b]
		path := []string{
			l.edges[sa.pod][sa.edge],
			l.aggs[sa.pod][0], // core0 hangs off agg 0
			l.cores[0],
			l.aggs[sb.pod][0],
			l.edges[sb.pod][sb.edge],
		}
		ps = append(ps, policy.Policy{Kind: policy.PrimaryPath, Path: path, TC: tcOf(pr)})
	}
	inst.Policies = ps
	return inst, nil
}

func wild4(bits int) string {
	v := ^uint32(0)
	if bits > 0 {
		v = ^(^uint32(0) << (32 - bits))
	}
	if bits == 0 {
		v = ^uint32(0)
	}
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// BreakFatTree damages the instance per §8: it inverts core ACL entries
// for a subset of the policies (unblocking PC1 pairs, blocking PC3 pairs,
// letting PC2 pairs bypass waypoints) and moves the low link costs from
// core0 to a different core (breaking PC4 primary paths). count bounds
// the number of policies broken (0 = break one of each configured class).
func BreakFatTree(inst *Instance, seed int64, count int) error {
	rng := rand.New(rand.NewSource(seed))
	byKind := map[policy.Kind][]policy.Policy{}
	for _, p := range inst.Policies {
		byKind[p.Kind] = append(byKind[p.Kind], p)
	}
	var toBreak []policy.Policy
	for _, kind := range []policy.Kind{policy.AlwaysBlocked, policy.AlwaysWaypoint, policy.KReachable, policy.PrimaryPath} {
		if len(byKind[kind]) > 0 {
			toBreak = append(toBreak, byKind[kind][rng.Intn(len(byKind[kind]))])
		}
	}
	if count > 0 {
		all := append([]policy.Policy(nil), inst.Policies...)
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		toBreak = all
		if count < len(all) {
			toBreak = all[:count]
		}
	}
	brokePC4 := false
	for _, p := range toBreak {
		switch p.Kind {
		case policy.AlwaysBlocked:
			// Remove the denies from every core ACL: the pair becomes
			// reachable.
			for name, cfg := range inst.Configs {
				if !strings.HasPrefix(name, "core") {
					continue
				}
				acl := cfg.ACL("CORE-ACL")
				removeDeny(acl, p.TC.Src.Prefix, p.TC.Dst.Prefix)
			}
		case policy.AlwaysWaypoint:
			// Remove the steering denies from non-waypoint cores: the
			// pair may now bypass the middleboxes.
			for name, cfg := range inst.Configs {
				if !strings.HasPrefix(name, "core") {
					continue
				}
				acl := cfg.ACL("CORE-ACL")
				removeDeny(acl, p.TC.Src.Prefix, p.TC.Dst.Prefix)
			}
		case policy.KReachable:
			// Add denies on every core: the pair becomes blocked.
			for name, cfg := range inst.Configs {
				if !strings.HasPrefix(name, "core") {
					continue
				}
				acl := cfg.ACL("CORE-ACL")
				entry := config.ACLEntryLine{Permit: false, Src: p.TC.Src.Prefix, Dst: p.TC.Dst.Prefix}
				acl.Entries = append([]config.ACLEntryLine{entry}, acl.Entries...)
			}
		case policy.PrimaryPath:
			brokePC4 = true
		}
	}
	if brokePC4 {
		// Move the low costs from core0's links to core1's.
		for _, cfg := range inst.Configs {
			for _, is := range cfg.Interfaces {
				onCore0 := cfg.Hostname == "core0" || is.Description == "Link-to-core0"
				onCore1 := cfg.Hostname == "core1" || is.Description == "Link-to-core1"
				if onCore0 && is.Cost == 1 {
					is.Cost = 10
				}
				if onCore1 {
					is.Cost = 1
				}
			}
		}
	}
	return inst.Rebuild()
}

// removeDeny drops deny entries exactly matching (src, dst) from the ACL.
func removeDeny(acl *config.ACLStanza, src, dst netip.Prefix) {
	if acl == nil {
		return
	}
	out := acl.Entries[:0]
	for _, e := range acl.Entries {
		if !e.Permit && e.Src == src && e.Dst == dst {
			continue
		}
		out = append(out, e)
	}
	acl.Entries = out
}
