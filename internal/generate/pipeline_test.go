package generate

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/translate"
)

// TestPipelineProperty is the system-level invariant of DESIGN.md: for
// randomly generated broken networks, CPR's repair translates into
// configuration patches that re-parse, and the rebuilt network satisfies
// every policy. It also checks the translation cost stays commensurate
// with the model-level change count.
func TestPipelineProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline fuzz is slow in -short mode")
	}
	for seed := int64(0); seed < 12; seed++ {
		inst, err := DataCenter(DCOptions{
			Name:             "fuzz",
			Routers:          4 + int(seed)%8,
			Subnets:          6 + int(seed*3)%10,
			BlockedFrac:      0.15 + float64(seed%4)*0.1,
			FullyBlockedDsts: int(seed) % 2,
			Violations:       1 + int(seed)%5,
			SpineSpray:       seed%3 == 0,
			Seed:             seed * 7,
		})
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		if len(inst.Violations()) == 0 {
			continue
		}
		h := inst.Harc()
		orig := harc.StateOf(h)
		res, err := core.Repair(h, inst.Policies, core.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: repair: %v", seed, err)
		}
		if !res.Solved {
			t.Errorf("seed %d: unsolved", seed)
			continue
		}
		// Model-level check.
		if bad := core.VerifyRepair(h, res.State, inst.Policies); len(bad) != 0 {
			t.Errorf("seed %d: repaired state violates %d policies", seed, len(bad))
			continue
		}
		// Hierarchy invariant.
		if err := h.ValidateState(res.State); err != nil {
			t.Errorf("seed %d: hierarchy: %v", seed, err)
		}
		// Translate and re-verify on rebuilt configs.
		cfgs, err := translate.CloneConfigs(inst.Configs)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := translate.Translate(h, orig, res.State, cfgs)
		if err != nil {
			t.Errorf("seed %d: translate: %v", seed, err)
			continue
		}
		if plan.NumLines() == 0 && res.Changes > 0 {
			t.Errorf("seed %d: model changed %d but no lines emitted", seed, res.Changes)
		}
		var parsed []*config.Config
		for name, c := range cfgs {
			rc, err := config.Parse(name, c.Print())
			if err != nil {
				t.Errorf("seed %d: patched %s does not re-parse: %v", seed, name, err)
				continue
			}
			parsed = append(parsed, rc)
		}
		n2, err := config.Extract(parsed)
		if err != nil {
			t.Errorf("seed %d: extract: %v", seed, err)
			continue
		}
		h2 := harc.Build(n2)
		ps2, err := RemapPolicies(inst.Policies, n2)
		if err != nil {
			t.Errorf("seed %d: remap: %v", seed, err)
			continue
		}
		if bad := policy.Violations(h2, ps2); len(bad) != 0 {
			t.Errorf("seed %d: rebuilt network violates %d policies (first %s); plan:\n%s",
				seed, len(bad), bad[0], plan)
		}
	}
}

// TestPlanMatchesSnapshotDiff: the translator's reported line changes
// must agree with an independent diff of the configuration snapshots —
// exactly, except that a modified line (OpModify) counts once in the
// plan and as remove+add in the diff.
func TestPlanMatchesSnapshotDiff(t *testing.T) {
	inst, err := DataCenter(DCOptions{
		Name: "difftest", Routers: 8, Subnets: 12, BlockedFrac: 0.3,
		FullyBlockedDsts: 1, Violations: 4, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := inst.Harc()
	orig := harc.StateOf(h)
	res, err := core.Repair(h, inst.Policies, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("unsolved")
	}
	cfgs, err := translate.CloneConfigs(inst.Configs)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := translate.Translate(h, orig, res.State, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	diff := config.DiffConfigs(inst.Configs, cfgs)
	modifies := 0
	for _, lc := range plan.Lines {
		if lc.Op == config.OpModify {
			modifies++
		}
	}
	want := plan.NumLines() + modifies
	if len(diff) != want {
		t.Errorf("snapshot diff has %d lines, plan reports %d (+%d modifies):\nplan:\n%sdiff:\n%s",
			len(diff), plan.NumLines(), modifies, plan, config.FormatDiff(diff))
	}
}

// TestPipelineFatTreeProperty runs the same invariant over broken
// fat-trees with all four policy classes.
func TestPipelineFatTreeProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline fuzz is slow in -short mode")
	}
	for seed := int64(1); seed <= 3; seed++ {
		inst, err := FatTree(FatTreeOptions{
			K: 4, PC1: 2, PC2: 2, PC3: 2, PC4: 2, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := BreakFatTree(inst, seed+100, 0); err != nil {
			t.Fatal(err)
		}
		h := inst.Harc()
		orig := harc.StateOf(h)
		res, err := core.Repair(h, inst.Policies, core.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Solved {
			t.Errorf("seed %d: unsolved", seed)
			continue
		}
		cfgs, err := translate.CloneConfigs(inst.Configs)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := translate.Translate(h, orig, res.State, cfgs)
		if err != nil {
			t.Fatalf("seed %d: translate: %v", seed, err)
		}
		repaired := &Instance{Name: "x", Configs: cfgs, Policies: inst.Policies}
		if err := repaired.Rebuild(); err != nil {
			t.Fatalf("seed %d: rebuild: %v", seed, err)
		}
		if bad := repaired.Violations(); len(bad) != 0 {
			t.Errorf("seed %d: rebuilt fat-tree violates %d policies (first %s); plan:\n%s",
				seed, len(bad), bad[0], plan)
		}
	}
}
