package generate

import (
	"fmt"
	"sort"
)

// presets are named large symmetric benchmark workloads, sized so that
// symmetry compression has real structure to exploit: fat-trees carry
// whole pods of role-equivalent aggregation and edge switches, and the
// big leaf-spine data center carries hundreds of interchangeable leaves.
// Policy counts follow the paper's evaluation mix (§8): mostly PC1/PC3
// with a sprinkle of waypointing.
var presets = map[string]func(seed int64) (*Instance, error){
	"fattree-k8": func(seed int64) (*Instance, error) {
		return FatTree(FatTreeOptions{
			K: 8, SubnetsPerEdge: 1, PC1: 10, PC2: 4, PC3: 10, Seed: seed,
		})
	},
	"fattree-k16": func(seed int64) (*Instance, error) {
		return FatTree(FatTreeOptions{
			K: 16, SubnetsPerEdge: 1, PC1: 16, PC2: 6, PC3: 16, Seed: seed,
		})
	},
	"dc-256": func(seed int64) (*Instance, error) {
		return DataCenter(DCOptions{
			Name: "dc256", Routers: 256, Subnets: 48,
			BlockedFrac: 0.3, FullyBlockedDsts: 2, Violations: 8, Seed: seed,
		})
	},
	// dc-512 doubles the leaf count of dc-256 at the same spine width and
	// policy mix, so the refined partition (and thus the quotient-side
	// repair cost) is identical while the concrete network — and with it
	// any concrete-side verification work — doubles. The class count is
	// pinned by TestPresetClassCounts.
	"dc-512": func(seed int64) (*Instance, error) {
		return DataCenter(DCOptions{
			Name: "dc512", Routers: 512, Subnets: 64,
			BlockedFrac: 0.3, FullyBlockedDsts: 2, Violations: 10, Seed: seed,
		})
	},
}

// PresetNames lists the available workload presets, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Preset generates a named symmetric benchmark workload. Fat-tree
// presets come out intact (break them with BreakFatTree); the data
// center preset is generated already broken, as DataCenter always is.
func Preset(name string, seed int64) (*Instance, error) {
	gen, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("generate: unknown preset %q (have %v)", name, PresetNames())
	}
	return gen(seed)
}
