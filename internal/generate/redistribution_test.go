package generate

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/smt/maxsat"
	"repro/internal/topology"
	"repro/internal/translate"
)

// redistributionNetwork: border router M runs OSPF toward A (where NET1
// lives) and BGP toward B (where NET2 lives). Without redistribution on
// M, routes do not cross protocols and the two subnets cannot reach each
// other.
func redistributionConfigs() map[string]string {
	return map[string]string{
		"A": `hostname A
!
interface eth0
 description Link-to-M
 ip address 10.0.1.1 255.255.255.0
!
interface eth1
 description Subnet-NET1
 ip address 20.0.1.1 255.255.255.0
!
router ospf 1
 redistribute connected
 passive-interface eth1
 network 10.0.0.0 0.255.255.255 area 0
`,
		"B": `hostname B
!
interface eth0
 description Link-to-M
 ip address 10.0.2.1 255.255.255.0
!
interface eth1
 description Subnet-NET2
 ip address 20.0.2.1 255.255.255.0
!
router bgp 65002
 redistribute connected
 neighbor 10.0.2.2 remote-as 65000
`,
		"M": `hostname M
!
interface eth0
 description Link-to-A
 ip address 10.0.1.2 255.255.255.0
!
interface eth1
 description Link-to-B
 ip address 10.0.2.2 255.255.255.0
!
router ospf 1
 network 10.0.1.0 0.0.0.255 area 0
!
router bgp 65000
 neighbor 10.0.2.1 remote-as 65002
`,
	}
}

func loadRedistribution(t *testing.T) (map[string]*config.Config, *topology.Network) {
	t.Helper()
	cfgs := map[string]*config.Config{}
	var parsed []*config.Config
	for name, text := range redistributionConfigs() {
		c, err := config.Parse(name, text)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfgs[name] = c
		parsed = append(parsed, c)
	}
	n, err := config.Extract(parsed)
	if err != nil {
		t.Fatal(err)
	}
	return cfgs, n
}

func TestRedistributionInitiallyUnreachable(t *testing.T) {
	_, n := loadRedistribution(t)
	h := harc.Build(n)
	tc := topology.TrafficClass{Src: n.Subnet("NET1"), Dst: n.Subnet("NET2")}
	p := policy.Policy{Kind: policy.KReachable, K: 1, TC: tc}
	if policy.Check(h, p) {
		t.Fatal("NET1 should not reach NET2 without redistribution on M")
	}
}

// TestRedistributionRepair: in all-tcs mode the minimal repair enables
// redistribution between M's processes (Table 3's aETG intra-device
// row); per-dst falls back to static routes on M.
func TestRedistributionRepair(t *testing.T) {
	for _, gran := range []core.Granularity{core.AllTCs, core.PerDst} {
		cfgs, n := loadRedistribution(t)
		h := harc.Build(n)
		tc := topology.TrafficClass{Src: n.Subnet("NET1"), Dst: n.Subnet("NET2")}
		rev := topology.TrafficClass{Src: n.Subnet("NET2"), Dst: n.Subnet("NET1")}
		ps := []policy.Policy{
			{Kind: policy.KReachable, K: 1, TC: tc},
			{Kind: policy.KReachable, K: 1, TC: rev},
		}
		opts := core.DefaultOptions()
		opts.Granularity = gran
		// Pin the linear engine: the instance has two equal-cost optima
		// (enable redistribution vs. add static routes), and which one a
		// MaxSAT engine's deterministic search lands on is a tie-break.
		// Linear descent finds the redistribution repair this test is
		// about; TestRedistributionRepairCostAcrossAlgorithms below checks
		// every engine agrees on the cost.
		opts.Algorithm = maxsat.LinearDescent
		res, err := core.Repair(h, ps, opts)
		if err != nil {
			t.Fatalf("%v: %v", gran, err)
		}
		if !res.Solved {
			t.Fatalf("%v: unsolved: %+v", gran, res.Stats)
		}
		if bad := core.VerifyRepair(h, res.State, ps); len(bad) != 0 {
			t.Fatalf("%v: still violates %v", gran, bad)
		}
		orig := harc.StateOf(h)
		plan, err := translate.Translate(h, orig, res.State, cfgs)
		if err != nil {
			t.Fatalf("%v: translate: %v", gran, err)
		}
		text := plan.String()
		if gran == core.AllTCs && !strings.Contains(text, "redistribute") {
			t.Errorf("all-tcs repair should enable redistribution:\n%s", text)
		}
		if gran == core.PerDst && !strings.Contains(text, "ip route") {
			t.Errorf("per-dst repair should add static routes:\n%s", text)
		}
		// Rebuild and verify.
		inst := &Instance{Name: "redist", Configs: cfgs, Policies: ps}
		if err := inst.Rebuild(); err != nil {
			t.Fatalf("%v: rebuild: %v", gran, err)
		}
		if bad := inst.Violations(); len(bad) != 0 {
			t.Errorf("%v: rebuilt network violates %v; plan:\n%s", gran, bad, text)
		}
		t.Logf("%v (%d lines):\n%s", gran, plan.NumLines(), text)
	}
}

// TestRedistributionRepairCostAcrossAlgorithms: the redistribution
// instance has several equal-cost optima, and the engines may land on
// different ones — but every exact engine must agree on the optimum
// cost, and every repair must verify.
func TestRedistributionRepairCostAcrossAlgorithms(t *testing.T) {
	costs := map[maxsat.Algorithm]int{}
	for _, algo := range []maxsat.Algorithm{maxsat.LinearDescent, maxsat.FuMalik, maxsat.OLL} {
		_, n := loadRedistribution(t)
		h := harc.Build(n)
		tc := topology.TrafficClass{Src: n.Subnet("NET1"), Dst: n.Subnet("NET2")}
		rev := topology.TrafficClass{Src: n.Subnet("NET2"), Dst: n.Subnet("NET1")}
		ps := []policy.Policy{
			{Kind: policy.KReachable, K: 1, TC: tc},
			{Kind: policy.KReachable, K: 1, TC: rev},
		}
		opts := core.DefaultOptions()
		opts.Granularity = core.AllTCs
		opts.Algorithm = algo
		res, err := core.Repair(h, ps, opts)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !res.Solved {
			t.Fatalf("%v: unsolved", algo)
		}
		if bad := core.VerifyRepair(h, res.State, ps); len(bad) != 0 {
			t.Fatalf("%v: still violates %v", algo, bad)
		}
		for _, st := range res.Stats {
			costs[algo] += st.Violations
		}
	}
	if costs[maxsat.OLL] != costs[maxsat.LinearDescent] || costs[maxsat.FuMalik] != costs[maxsat.LinearDescent] {
		t.Fatalf("engines disagree on the optimum: %v", costs)
	}
}
