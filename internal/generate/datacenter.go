package generate

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"

	"repro/internal/config"
	"repro/internal/policy"
	"repro/internal/topology"
)

// DCOptions parameterizes one synthetic data-center network. The corpus
// defaults are calibrated to the paper's published statistics (§8): 96
// networks, 2-24 routers with a median of 8, roughly one policy per
// traffic class with a PC1/PC3 mix that varies per network, and a small
// number of violated policies per snapshot.
type DCOptions struct {
	Name    string
	Routers int // total devices (spine-leaf split is derived)
	Subnets int // host subnets spread across the leaves
	// BlockedFrac is the fraction of traffic classes under a PC1 policy;
	// the rest carry PC3.
	BlockedFrac float64
	// FullyBlockedDsts is the number of destinations whose every source
	// is blocked (these admit the operator's aggregate-ACL repairs that
	// beat CPR's per-class rules, §8.3).
	FullyBlockedDsts int
	// Violations is the number of policies the breaker violates.
	Violations int
	// SpineSpray makes the breaker (and the operator) work on the spine
	// ACLs (one line per spine) instead of the destination leaf.
	SpineSpray bool
	Seed       int64
}

// DataCenter generates a broken leaf-spine network with its policy
// specification. The returned instance's configurations violate exactly
// the policies the breaker targeted (callers can check Violations).
func DataCenter(opts DCOptions) (*Instance, error) {
	if opts.Routers < 2 {
		return nil, fmt.Errorf("generate: data center needs at least 2 routers")
	}
	if opts.Subnets < 2 {
		return nil, fmt.Errorf("generate: data center needs at least 2 subnets")
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	spines := opts.Routers / 4
	if spines < 1 {
		spines = 1
	}
	if spines > 4 {
		spines = 4
	}
	leaves := opts.Routers - spines
	if leaves < 1 {
		return nil, fmt.Errorf("generate: %d routers leave no leaves", opts.Routers)
	}

	builders := map[string]*cfgBuilder{}
	var spineNames, leafNames []string
	for i := 0; i < spines; i++ {
		name := fmt.Sprintf("spine%d", i)
		spineNames = append(spineNames, name)
		builders[name] = newCfgBuilder(name)
	}
	for i := 0; i < leaves; i++ {
		name := fmt.Sprintf("leaf%d", i)
		leafNames = append(leafNames, name)
		builders[name] = newCfgBuilder(name)
	}

	// Full bipartite spine-leaf links.
	linkIdx := 0
	for li, leaf := range leafNames {
		for si, spine := range spineNames {
			a := netip.AddrFrom4([4]byte{10, byte(linkIdx / 250), byte(linkIdx % 250), 1})
			b := netip.AddrFrom4([4]byte{10, byte(linkIdx / 250), byte(linkIdx % 250), 2})
			linkIdx++
			builders[leaf].addIntf(fmt.Sprintf("Link-to-%s", spine), a, 24, "ip ospf cost 10")
			builders[spine].addIntf(fmt.Sprintf("Link-to-%s", leaf), b, 24, "ip ospf cost 10")
			_ = li
			_ = si
		}
	}
	// Spread subnets round-robin across leaves; record host interfaces.
	var subs []dcSubnet
	for s := 0; s < opts.Subnets; s++ {
		leaf := leafNames[s%len(leafNames)]
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(s / 250), byte(s % 250), 0}), 24)
		name := fmt.Sprintf("net%d", s)
		b := builders[leaf]
		intf := b.addIntf(config.SubnetDescriptionPrefix+name, prefix.Addr().Next(), 24,
			fmt.Sprintf("ip access-group HOST-%s out", name))
		b.router = append(b.router, "passive-interface "+intf)
		b.aclOrder = append(b.aclOrder, "HOST-"+name)
		subs = append(subs, dcSubnet{name: name, prefix: prefix, leaf: leaf, hostIntf: intf})
	}
	// Spine ACLs (initially permit-all), applied inbound on every spine
	// interface.
	for _, spine := range spineNames {
		b := builders[spine]
		b.aclOrder = append(b.aclOrder, "SPINE-ACL")
		b.acls["SPINE-ACL"] = []string{"permit ip any any"}
		// Attach to every interface.
		patched := make([]string, 0, len(b.lines))
		for _, l := range b.lines {
			patched = append(patched, l)
			if len(l) > 11 && l[:10] == " ip addres" {
				patched = append(patched, " ip access-group SPINE-ACL in")
			}
		}
		b.lines = patched
	}

	// Policy assignment: pick blocked pairs. Fully-blocked destinations
	// first, then random pairs up to the target fraction.
	type pair struct{ a, b int }
	blocked := map[pair]bool{}
	order := rng.Perm(len(subs))
	fully := opts.FullyBlockedDsts
	if fully > len(subs)/2 {
		fully = len(subs) / 2
	}
	fullyBlocked := map[int]bool{}
	for i := 0; i < fully; i++ {
		dst := order[i]
		fullyBlocked[dst] = true
		for a := range subs {
			if a != dst {
				blocked[pair{a, dst}] = true
			}
		}
	}
	total := len(subs) * (len(subs) - 1)
	want := int(opts.BlockedFrac * float64(total))
	for len(blocked) < want {
		a, b := rng.Intn(len(subs)), rng.Intn(len(subs))
		if a == b || fullyBlocked[a] {
			continue
		}
		blocked[pair{a, b}] = true
	}
	// Emit the deny entries on the destination's host ACL.
	type keyed struct {
		p    pair
		line string
	}
	var denies []keyed
	for p := range blocked {
		src, dst := subs[p.a], subs[p.b]
		denies = append(denies, keyed{p, fmt.Sprintf("deny ip %s %s %s %s",
			src.prefix.Addr(), wild4(24), dst.prefix.Addr(), wild4(24))})
	}
	sort.Slice(denies, func(i, j int) bool { return denies[i].line < denies[j].line })
	for _, d := range denies {
		dst := subs[d.p.b]
		b := builders[dst.leaf]
		b.acls["HOST-"+dst.name] = append(b.acls["HOST-"+dst.name], d.line)
	}
	for _, s := range subs {
		b := builders[s.leaf]
		b.acls["HOST-"+s.name] = append(b.acls["HOST-"+s.name], "permit ip any any")
	}

	inst := &Instance{Name: opts.Name, Configs: map[string]*config.Config{}}
	for name, b := range builders {
		cfg, err := config.Parse(name+".cfg", b.text())
		if err != nil {
			return nil, fmt.Errorf("generate: dc config %s: %w", name, err)
		}
		inst.Configs[name] = cfg
	}
	if err := inst.Rebuild(); err != nil {
		return nil, err
	}

	// Policies: PC1 for blocked pairs, PC3 otherwise (K=2 when two
	// disjoint paths exist, i.e. at least two spines; K=1 otherwise,
	// matching the inference the paper applies to real snapshots).
	k := 1
	if spines >= 2 {
		k = 2
	}
	n := inst.Network
	var ps []policy.Policy
	for a := range subs {
		for b := range subs {
			if a == b {
				continue
			}
			tc := topology.TrafficClass{Src: n.Subnet(subs[a].name), Dst: n.Subnet(subs[b].name)}
			if blocked[pair{a, b}] {
				ps = append(ps, policy.Policy{Kind: policy.AlwaysBlocked, TC: tc})
			} else {
				kk := k
				if subs[a].leaf == subs[b].leaf {
					kk = 1 // same-leaf classes have a single attachment path
				}
				ps = append(ps, policy.Policy{Kind: policy.KReachable, K: kk, TC: tc})
			}
		}
	}
	inst.Policies = ps

	// Break the snapshot.
	if opts.Violations > 0 {
		if err := breakDataCenter(inst, subs, opts, rng); err != nil {
			return nil, err
		}
	}
	return inst, nil
}

// dcSubnet records a generated subnet's placement.
type dcSubnet struct {
	name     string
	prefix   netip.Prefix
	leaf     string
	hostIntf string
}

// breakDataCenter violates opts.Violations policies: PC1 policies lose
// their deny line; PC3 policies gain denies — on the destination leaf or
// sprayed across every spine (SpineSpray).
func breakDataCenter(inst *Instance, subs []dcSubnet, opts DCOptions, rng *rand.Rand) error {
	subnetByName := map[string]dcSubnet{}
	for _, s := range subs {
		subnetByName[s.name] = s
	}
	// Prefer breaking PC1 policies of fully-blocked destinations (their
	// repair is the interesting aggregate case), then a mix.
	perm := rng.Perm(len(inst.Policies))
	var chosen []policy.Policy
	for _, i := range perm {
		if len(chosen) >= opts.Violations {
			break
		}
		chosen = append(chosen, inst.Policies[i])
	}
	for _, p := range chosen {
		src, dst := p.TC.Src, p.TC.Dst
		dstInfo := subnetByName[dst.Name]
		leafCfg := inst.Configs[dstInfo.leaf]
		acl := leafCfg.ACL("HOST-" + dst.Name)
		switch p.Kind {
		case policy.AlwaysBlocked:
			removeDeny(acl, src.Prefix, dst.Prefix)
			// Fully-blocked destinations may be protected by an aggregate
			// any->dst deny; degrade it so the pair leaks.
			if acl.Blocks(src.Prefix, dst.Prefix) {
				entry := config.ACLEntryLine{Permit: true, Src: src.Prefix, Dst: dst.Prefix}
				acl.Entries = append([]config.ACLEntryLine{entry}, acl.Entries...)
			}
		case policy.KReachable:
			if opts.SpineSpray {
				for name, cfg := range inst.Configs {
					if len(name) >= 5 && name[:5] == "spine" {
						sa := cfg.ACL("SPINE-ACL")
						entry := config.ACLEntryLine{Permit: false, Src: src.Prefix, Dst: dst.Prefix}
						sa.Entries = append([]config.ACLEntryLine{entry}, sa.Entries...)
					}
				}
				// Same-leaf traffic never crosses a spine; block at the
				// leaf as well so the violation is real.
				if subnetByName[src.Name].leaf == dstInfo.leaf {
					entry := config.ACLEntryLine{Permit: false, Src: src.Prefix, Dst: dst.Prefix}
					acl.Entries = append([]config.ACLEntryLine{entry}, acl.Entries...)
				}
			} else {
				entry := config.ACLEntryLine{Permit: false, Src: src.Prefix, Dst: dst.Prefix}
				acl.Entries = append([]config.ACLEntryLine{entry}, acl.Entries...)
			}
		}
	}
	return inst.Rebuild()
}

// CorpusOptions scales the 96-network corpus.
type CorpusOptions struct {
	Networks int
	// SubnetScale multiplies the per-network subnet counts; 1.0 gives a
	// median of ~32 subnets (≈1K traffic classes, the paper's median).
	SubnetScale float64
	Seed        int64
}

// DefaultCorpus mirrors the paper's dataset dimensions at a runtime-
// friendly scale.
func DefaultCorpus() CorpusOptions {
	return CorpusOptions{Networks: 96, SubnetScale: 1.0, Seed: 20170801}
}

// Corpus generates the synthetic stand-in for the paper's 96 real
// data-center networks. Sizes span 2-24 routers with a median of 8;
// traffic-class counts have a long tail; each network has a handful of
// violated policies; policy mixes vary per network (Figure 6).
func Corpus(opts CorpusOptions) ([]*Instance, error) {
	if opts.Networks <= 0 {
		opts.Networks = 96
	}
	if opts.SubnetScale <= 0 {
		opts.SubnetScale = 1.0
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var out []*Instance
	for i := 0; i < opts.Networks; i++ {
		// Router count: 2-24 with a median of 8 (triangular draw plus an
		// occasional large network, matching the paper's dataset shape).
		routers := 3 + rng.Intn(6) + rng.Intn(6)
		switch {
		case rng.Intn(16) == 0:
			routers = 2
		case rng.Intn(8) == 0:
			routers += rng.Intn(12)
		}
		if routers > 24 {
			routers = 24
		}
		// Subnet count: median ≈ 32 (≈1K traffic classes, the paper's
		// median policy count) with a long tail, scaled.
		base := 14 + routers + rng.Intn(12)
		if rng.Intn(12) == 0 {
			base *= 2 // tail network
		}
		subnets := int(float64(base) * opts.SubnetScale)
		if subnets < 2 {
			subnets = 2
		}
		if subnets > 120 {
			subnets = 120
		}
		dc := DCOptions{
			Name:             fmt.Sprintf("dc%02d", i),
			Routers:          routers,
			Subnets:          subnets,
			BlockedFrac:      0.05 + 0.45*rng.Float64(),
			FullyBlockedDsts: rng.Intn(3),
			Violations:       1 + rng.Intn(6),
			SpineSpray:       rng.Intn(3) == 0,
			Seed:             rng.Int63(),
		}
		inst, err := DataCenter(dc)
		if err != nil {
			return nil, fmt.Errorf("generate: corpus network %d: %w", i, err)
		}
		out = append(out, inst)
	}
	return out, nil
}
