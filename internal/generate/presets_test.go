package generate_test

import (
	"testing"

	"repro/internal/compress"
	"repro/internal/generate"
	"repro/internal/topology"
)

func TestPresetUnknown(t *testing.T) {
	if _, err := generate.Preset("no-such-preset", 1); err == nil {
		t.Fatal("unknown preset did not error")
	}
}

// TestPresetClassCounts pins the role-equivalence structure the refiner
// must find on each symmetric preset for a single inter-pod traffic
// class: these are regression anchors — if a refiner change splits more
// (lost compression) or fewer (risky over-merging) classes, this fails
// and the change needs a deliberate re-pin.
func TestPresetClassCounts(t *testing.T) {
	cases := []struct {
		preset string
		seed   int64
		// devices is the generated network size; classes the refined
		// partition size; quotient the synthesized device count at
		// redundancy 2 (singleton endpoint classes keep one member).
		devices, classes, quotient int
	}{
		// Both fat-trees refine to the same 13 classes — core, per-pod
		// aggregation/edge roles, and the two concrete endpoint edges —
		// so the quotient size is scale-invariant while the concrete
		// network quadruples.
		{"fattree-k8", 11, 80, 13, 24},
		{"fattree-k16", 11, 320, 13, 24},
		// The leaf-spine DCs collapse to spines, plain leaves, and the
		// two endpoint leaves — the partition is scale-invariant, so
		// dc-512 pins the same classes over twice the concrete devices.
		{"dc-256", 11, 256, 4, 6},
		{"dc-512", 11, 512, 4, 6},
	}
	for _, tc := range cases {
		t.Run(tc.preset, func(t *testing.T) {
			inst, err := generate.Preset(tc.preset, tc.seed)
			if err != nil {
				t.Fatal(err)
			}
			if got := inst.Network.NumDevices(); got != tc.devices {
				t.Fatalf("devices = %d, want %d", got, tc.devices)
			}
			if len(inst.Policies) == 0 {
				t.Fatal("preset generated no policies")
			}
			q, err := compress.Build(inst.Network, compress.Spec{
				TCs:        []topology.TrafficClass{inst.Policies[0].TC},
				Redundancy: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(q.Classes) != tc.classes {
				t.Errorf("classes = %d, want %d", len(q.Classes), tc.classes)
			}
			if got := q.Net.NumDevices(); got != tc.quotient {
				t.Errorf("quotient devices = %d, want %d", got, tc.quotient)
			}
			if err := q.Net.Validate(); err != nil {
				t.Errorf("quotient does not validate: %v", err)
			}
		})
	}
}
