package generate

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
)

func TestDataCenterShape(t *testing.T) {
	inst, err := DataCenter(DCOptions{Name: "t", Routers: 8, Subnets: 16, BlockedFrac: 0.25, Violations: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Network.NumDevices() != 8 {
		t.Errorf("devices = %d, want 8", inst.Network.NumDevices())
	}
	if len(inst.Network.Subnets) != 16 {
		t.Errorf("subnets = %d, want 16", len(inst.Network.Subnets))
	}
	// One policy per traffic class (Figure 6's "majority of networks").
	if len(inst.Policies) != 16*15 {
		t.Errorf("policies = %d, want %d", len(inst.Policies), 16*15)
	}
	if err := inst.Network.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDataCenterUnbrokenSatisfiesSpec(t *testing.T) {
	inst, err := DataCenter(DCOptions{Name: "t", Routers: 8, Subnets: 12, BlockedFrac: 0.3, FullyBlockedDsts: 1, Violations: 0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v := inst.Violations(); len(v) != 0 {
		t.Fatalf("unbroken network violates %d policies: %v", len(v), v[:min(3, len(v))])
	}
}

func TestDataCenterBreakerViolates(t *testing.T) {
	for _, spray := range []bool{false, true} {
		inst, err := DataCenter(DCOptions{Name: "t", Routers: 8, Subnets: 12, BlockedFrac: 0.3, Violations: 5, SpineSpray: spray, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		v := inst.Violations()
		if len(v) == 0 || len(v) > 5 {
			t.Errorf("spray=%v: violations = %d, want 1-5", spray, len(v))
		}
	}
}

func TestDataCenterMixVaries(t *testing.T) {
	low, err := DataCenter(DCOptions{Name: "l", Routers: 6, Subnets: 10, BlockedFrac: 0.05, Violations: 0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	high, err := DataCenter(DCOptions{Name: "h", Routers: 6, Subnets: 10, BlockedFrac: 0.5, Violations: 0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	lowPC1 := policy.CountByKind(low.Policies)[policy.AlwaysBlocked]
	highPC1 := policy.CountByKind(high.Policies)[policy.AlwaysBlocked]
	if lowPC1 >= highPC1 {
		t.Errorf("PC1 counts should grow with BlockedFrac: %d vs %d", lowPC1, highPC1)
	}
}

func TestCorpusCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation is slow in -short mode")
	}
	corpus, err := Corpus(CorpusOptions{Networks: 96, SubnetScale: 0.4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 96 {
		t.Fatalf("corpus size %d, want 96", len(corpus))
	}
	var sizes []int
	for _, inst := range corpus {
		d := inst.Network.NumDevices()
		if d < 2 || d > 24 {
			t.Errorf("%s has %d routers, outside 2-24", inst.Name, d)
		}
		sizes = append(sizes, d)
	}
	sort.Ints(sizes)
	median := sizes[len(sizes)/2]
	if median < 6 || median > 10 {
		t.Errorf("median routers = %d, want ≈8 (paper §8)", median)
	}
}

func TestCorpusNetworksHaveViolations(t *testing.T) {
	corpus, err := Corpus(CorpusOptions{Networks: 6, SubnetScale: 0.4, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range corpus {
		if len(inst.Violations()) == 0 {
			t.Errorf("%s has no violated policies", inst.Name)
		}
	}
}

func TestOperatorRepairValidAndComparable(t *testing.T) {
	inst, err := DataCenter(DCOptions{Name: "t", Routers: 8, Subnets: 12, BlockedFrac: 0.3, FullyBlockedDsts: 1, Violations: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	op, err := SimulateOperator(inst, 12)
	if err != nil {
		t.Fatalf("SimulateOperator: %v", err)
	}
	if op.Lines == 0 {
		t.Error("operator repair should change lines")
	}
	if op.ImpactedTCs == 0 {
		t.Error("operator repair should impact traffic classes")
	}
}

func TestOperatorAggregateBeatsPerPair(t *testing.T) {
	// A fully-blocked destination with several violated PC1 policies:
	// the operator aggregates into one any->dst deny (1 line) impacting
	// every class toward dst; CPR writes one line per violated class.
	inst, err := DataCenter(DCOptions{Name: "t", Routers: 6, Subnets: 8, BlockedFrac: 0.6, FullyBlockedDsts: 2, Violations: 6, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	violated := inst.Violations()
	if len(violated) == 0 {
		t.Skip("seed produced no violations")
	}
	op, err := SimulateOperator(inst, 14)
	if err != nil {
		t.Fatal(err)
	}
	// Run CPR for comparison.
	h := inst.Harc()
	res, err := core.Repair(h, inst.Policies, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("CPR unsolved: %+v", res.Stats)
	}
	if bad := core.VerifyRepair(h, res.State, inst.Policies); len(bad) != 0 {
		t.Fatalf("CPR repair invalid: %v", bad)
	}
	t.Logf("operator: %d lines, %d TCs impacted; CPR model changes: %d",
		op.Lines, op.ImpactedTCs, res.Changes)
}

func TestCorpusRepairEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end corpus repair is slow in -short mode")
	}
	corpus, err := Corpus(CorpusOptions{Networks: 4, SubnetScale: 0.4, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range corpus {
		h := inst.Harc()
		res, err := core.Repair(h, inst.Policies, core.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if !res.Solved {
			t.Errorf("%s: unsolved", inst.Name)
			continue
		}
		if bad := core.VerifyRepair(h, res.State, inst.Policies); len(bad) != 0 {
			t.Errorf("%s: repair leaves %d violations", inst.Name, len(bad))
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
