package generate

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"strings"

	"repro/internal/config"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/translate"
)

// OperatorRepair is a simulated hand-written repair: the baseline CPR is
// compared against in Figure 11. Operators repair the same violations
// with plausible but coarser strategies — aggregate ACL entries when
// every source toward a destination is blocked, spine-resident rules,
// removal of every line the incident touched — and their repairs are
// validated against the specification before being reported.
type OperatorRepair struct {
	Lines       int
	ImpactedTCs int
	Configs     map[string]*config.Config
}

// SimulateOperator produces a hand-written repair for the instance's
// current violations. The returned repair is always policy-compliant;
// strategies that would violate the specification fall back to CPR-like
// precise edits.
func SimulateOperator(inst *Instance, seed int64) (*OperatorRepair, error) {
	rng := rand.New(rand.NewSource(seed))
	violated := inst.Violations()
	cfgs, err := translate.CloneConfigs(inst.Configs)
	if err != nil {
		return nil, err
	}
	lines := 0

	// Group PC1 violations by destination to enable aggregate repairs.
	pc1ByDst := map[string][]policy.Policy{}
	var others []policy.Policy
	for _, p := range violated {
		if p.Kind == policy.AlwaysBlocked {
			pc1ByDst[p.TC.Dst.Name] = append(pc1ByDst[p.TC.Dst.Name], p)
		} else {
			others = append(others, p)
		}
	}

	// All PC1 policies per destination in the full spec (to test whether
	// an aggregate any->dst deny is safe).
	pc1Spec := map[string]int{}
	tcsPerDst := map[string]int{}
	for _, p := range inst.Policies {
		tcsPerDst[p.TC.Dst.Name]++
		if p.Kind == policy.AlwaysBlocked {
			pc1Spec[p.TC.Dst.Name]++
		}
	}

	hostACLFor := func(dstName string) (*config.Config, *config.ACLStanza, string, error) {
		for devName, cfg := range cfgs {
			for _, is := range cfg.Interfaces {
				if is.Description == config.SubnetDescriptionPrefix+dstName {
					acl := cfg.ACL(is.OutACL)
					if acl == nil {
						return nil, nil, "", fmt.Errorf("generate: subnet %s has no host ACL", dstName)
					}
					return cfg, acl, devName, nil
				}
			}
		}
		return nil, nil, "", fmt.Errorf("generate: subnet %s not found in configs", dstName)
	}

	dstNames := make([]string, 0, len(pc1ByDst))
	for name := range pc1ByDst {
		dstNames = append(dstNames, name)
	}
	sort.Strings(dstNames)
	for _, dstName := range dstNames {
		group := pc1ByDst[dstName]
		_, acl, _, err := hostACLFor(dstName)
		if err != nil {
			return nil, err
		}
		dstPrefix := group[0].TC.Dst.Prefix
		if pc1Spec[dstName] == tcsPerDst[dstName] {
			// Every class toward this destination must be blocked: the
			// operator writes one aggregate deny any->dst — fewer lines
			// than CPR's per-class rules but it touches every class
			// toward dst (Figure 10's phenomenon, inverted).
			entry := config.ACLEntryLine{Permit: false, Dst: dstPrefix}
			acl.Entries = trimExactPermits(acl.Entries, dstPrefix)
			acl.Entries = append([]config.ACLEntryLine{entry}, acl.Entries...)
			lines++
			continue
		}
		// Otherwise per-pair denies; some operators place them on every
		// spine instead of the leaf (more lines, same behavior).
		onSpines := rng.Intn(2) == 0
		for _, p := range group {
			if onSpines {
				for devName, cfg := range cfgs {
					if !strings.HasPrefix(devName, "spine") {
						continue
					}
					sa := cfg.ACL("SPINE-ACL")
					if sa == nil {
						continue
					}
					entry := config.ACLEntryLine{Permit: false, Src: p.TC.Src.Prefix, Dst: p.TC.Dst.Prefix}
					sa.Entries = append([]config.ACLEntryLine{entry}, sa.Entries...)
					lines++
				}
				// Same-leaf traffic bypasses the spines; ensure blocking.
				if !crossesSpine(inst, p) {
					entry := config.ACLEntryLine{Permit: false, Src: p.TC.Src.Prefix, Dst: p.TC.Dst.Prefix}
					acl.Entries = append([]config.ACLEntryLine{entry}, acl.Entries...)
					lines++
				}
			} else {
				entry := config.ACLEntryLine{Permit: false, Src: p.TC.Src.Prefix, Dst: p.TC.Dst.Prefix}
				acl.Entries = append([]config.ACLEntryLine{entry}, acl.Entries...)
				lines++
			}
		}
	}

	// PC3 violations: the operator undoes the incident wholesale —
	// removing every deny matching the pair wherever it appears (leaf
	// and all spines), even when restoring two disjoint paths would do.
	for _, p := range others {
		if p.Kind != policy.KReachable {
			continue
		}
		for _, cfg := range cfgs {
			for _, acl := range cfg.ACLs {
				removed := removeDenyCount(acl, p.TC.Src.Prefix, p.TC.Dst.Prefix)
				lines += removed
			}
		}
	}

	// Measure the repair the way the paper measures hand-written repairs:
	// by diffing the configuration snapshots (§8.3). The strategy-level
	// counter is kept as a cross-check.
	diff := config.DiffConfigs(inst.Configs, cfgs)
	if len(diff) != lines {
		return nil, fmt.Errorf("generate: operator accounting mismatch: counted %d lines, snapshot diff has %d:\n%s",
			lines, len(diff), config.FormatDiff(diff))
	}
	op := &OperatorRepair{Lines: len(diff), Configs: cfgs}

	// Validate: the hand-written repair must satisfy the full spec.
	repaired := &Instance{Name: inst.Name + "-operator", Configs: cfgs, Policies: inst.Policies}
	if err := repaired.Rebuild(); err != nil {
		return nil, err
	}
	if bad := repaired.Violations(); len(bad) != 0 {
		return nil, fmt.Errorf("generate: operator repair left %d violations (first: %s)", len(bad), bad[0])
	}

	// Impact: compare HARC states before and after the operator's edits.
	origH := inst.Harc()
	origState := harc.StateOf(origH)
	newState := harc.StateOf(repaired.Harc())
	op.ImpactedTCs = countImpacted(origH, origState, newState)
	return op, nil
}

// crossesSpine reports whether the traffic class's endpoints sit on
// different leaves (so its paths traverse a spine).
func crossesSpine(inst *Instance, p policy.Policy) bool {
	leafOf := func(subnetName string) string {
		for devName, cfg := range inst.Configs {
			for _, is := range cfg.Interfaces {
				if is.Description == config.SubnetDescriptionPrefix+subnetName {
					return devName
				}
			}
		}
		return ""
	}
	return leafOf(p.TC.Src.Name) != leafOf(p.TC.Dst.Name)
}

// trimExactPermits removes permit entries that specifically target dst
// (left over from the breaker) so an aggregate deny takes effect.
func trimExactPermits(entries []config.ACLEntryLine, dst netip.Prefix) []config.ACLEntryLine {
	out := entries[:0]
	for _, e := range entries {
		if e.Permit && e.Dst == dst {
			continue
		}
		out = append(out, e)
	}
	return out
}

// removeDenyCount removes every deny exactly matching (src, dst) and
// returns how many were removed.
func removeDenyCount(acl *config.ACLStanza, src, dst netip.Prefix) int {
	if acl == nil {
		return 0
	}
	removed := 0
	out := acl.Entries[:0]
	for _, e := range acl.Entries {
		if !e.Permit && e.Src == src && e.Dst == dst {
			removed++
			continue
		}
		out = append(out, e)
	}
	acl.Entries = out
	return removed
}

// countImpacted counts traffic classes whose tcETG presence differs
// between the two states (built over the same slot table).
func countImpacted(h *harc.HARC, a, b *harc.State) int {
	count := 0
	for _, tc := range h.TCs {
		am, bm := a.TC[tc.Key()], b.TC[tc.Key()]
		for _, s := range h.Slots {
			if am[s.Key()] != bm[s.Key()] {
				count++
				break
			}
		}
	}
	return count
}
