package generate

import (
	"testing"

	"repro/internal/policy"
)

func TestFatTreeShape(t *testing.T) {
	inst, err := FatTree(FatTreeOptions{K: 4, PC1: 3, PC2: 3, PC3: 3, PC4: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.Network.NumDevices(); got != 20 {
		t.Errorf("4-port fat-tree has %d routers, want 20 (paper §8)", got)
	}
	// Links: pods*(k/2)^2 edge-agg + pods*(k/2)^2 agg-core = 16+16.
	if got := len(inst.Network.Links); got != 32 {
		t.Errorf("links = %d, want 32", got)
	}
	if got := len(inst.Network.Subnets); got != 8 {
		t.Errorf("subnets = %d, want 8 (one per edge switch)", got)
	}
	if err := inst.Network.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestFatTree6PortSize(t *testing.T) {
	inst, err := FatTree(FatTreeOptions{K: 6, PC3: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.Network.NumDevices(); got != 45 {
		t.Errorf("6-port fat-tree has %d routers, want 45 (paper Fig. 8b)", got)
	}
}

func TestFatTreePoliciesInitiallyHold(t *testing.T) {
	inst, err := FatTree(FatTreeOptions{K: 4, PC1: 3, PC2: 3, PC3: 3, PC4: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Policies) != 12 {
		t.Fatalf("policies = %d, want 12", len(inst.Policies))
	}
	if v := inst.Violations(); len(v) != 0 {
		t.Fatalf("freshly generated fat-tree violates %d policies: %v", len(v), v)
	}
}

func TestFatTreeWaypointsPresent(t *testing.T) {
	inst, err := FatTree(FatTreeOptions{K: 4, PC2: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	wps := 0
	for _, l := range inst.Network.Links {
		if l.Waypoint {
			wps++
		}
	}
	// Half of the core-agg links (cores 0..1 of 4) carry waypoints: 2
	// cores × 4 pods × 1 agg each = 8.
	if wps != 8 {
		t.Errorf("waypoint links = %d, want 8", wps)
	}
}

func TestFatTreeDeterministic(t *testing.T) {
	a, err := FatTree(FatTreeOptions{K: 4, PC1: 2, PC3: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FatTree(FatTreeOptions{K: 4, PC1: 2, PC3: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if policy.Format(a.Policies) != policy.Format(b.Policies) {
		t.Error("same seed should give same policies")
	}
	for name := range a.Configs {
		if a.Configs[name].Print() != b.Configs[name].Print() {
			t.Errorf("config %s differs across identical seeds", name)
		}
	}
	c, err := FatTree(FatTreeOptions{K: 4, PC1: 2, PC3: 2, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if policy.Format(a.Policies) == policy.Format(c.Policies) {
		t.Error("different seeds should (generally) differ")
	}
}

func TestFatTreeTooManyPolicies(t *testing.T) {
	if _, err := FatTree(FatTreeOptions{K: 4, PC1: 10000, Seed: 1}); err == nil {
		t.Error("expected error for more policies than traffic classes")
	}
	if _, err := FatTree(FatTreeOptions{K: 3}); err == nil {
		t.Error("expected error for odd K")
	}
}

func TestBreakFatTreeViolatesEachClass(t *testing.T) {
	inst, err := FatTree(FatTreeOptions{K: 4, PC1: 3, PC2: 3, PC3: 3, PC4: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := BreakFatTree(inst, 99, 0); err != nil {
		t.Fatal(err)
	}
	violated := inst.Violations()
	kinds := map[policy.Kind]bool{}
	for _, p := range violated {
		kinds[p.Kind] = true
	}
	for _, k := range []policy.Kind{policy.AlwaysBlocked, policy.AlwaysWaypoint, policy.KReachable, policy.PrimaryPath} {
		if !kinds[k] {
			t.Errorf("breaker should violate a %v policy; violated: %v", k, violated)
		}
	}
}

func TestBreakFatTreeCount(t *testing.T) {
	inst, err := FatTree(FatTreeOptions{K: 4, PC1: 4, PC3: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := BreakFatTree(inst, 6, 2); err != nil {
		t.Fatal(err)
	}
	v := inst.Violations()
	if len(v) == 0 || len(v) > 2 {
		t.Errorf("breaking 2 policies violated %d: %v", len(v), v)
	}
}

func TestSubnetsPerEdgeScaling(t *testing.T) {
	inst, err := FatTree(FatTreeOptions{K: 4, SubnetsPerEdge: 3, PC3: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(inst.Network.Subnets); got != 24 {
		t.Errorf("subnets = %d, want 24", got)
	}
}
