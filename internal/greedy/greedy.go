// Package greedy implements the polynomial-time graph-algorithm repairs
// the paper considers before rejecting them for the general problem (§5):
// min-cut ACL insertion for PC1, waypoint placement on cut edges for PC2,
// and max-flow path addition via static routes for PC3.
//
// Each violated policy is repaired in isolation, exactly the limitation
// the paper identifies: the result is not guaranteed minimal, repairs of
// one policy can break another (no cross-policy or cross-traffic-class
// reasoning), and PC4 (inverse shortest paths) is not handled at all.
// It exists as the ablation baseline for CPR's MaxSMT formulation; see
// the Ablation benchmarks and tests.
package greedy

import (
	"fmt"

	"repro/internal/arc"
	"repro/internal/graph"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/topology"
)

// Result reports a greedy repair attempt.
type Result struct {
	State *harc.State
	// Changes counts construct edits (comparable to core.Result.Changes).
	Changes int
	// Clean reports whether, after repairing each violated policy in
	// isolation, the full specification holds — frequently false, which
	// is the point of the baseline.
	Clean bool
	// StillViolated lists policies violated by the final state.
	StillViolated []policy.Policy
}

// Repair applies per-policy graph repairs in specification order.
// PrimaryPath policies yield an error (the inverse-shortest-path problem
// is out of the baseline's scope, §5).
func Repair(h *harc.HARC, policies []policy.Policy) (*Result, error) {
	st := harc.StateOf(h).Clone()
	changes := 0
	for _, p := range policies {
		if policy.CheckState(h, st, p) {
			continue
		}
		var (
			n   int
			err error
		)
		switch p.Kind {
		case policy.AlwaysBlocked:
			n, err = repairPC1(h, st, p)
		case policy.AlwaysWaypoint:
			n, err = repairPC2(h, st, p)
		case policy.KReachable:
			n, err = repairPC3(h, st, p)
		default:
			return nil, fmt.Errorf("greedy: policy class %v is not supported by the graph-algorithm baseline", p.Kind)
		}
		if err != nil {
			return nil, err
		}
		changes += n
	}
	res := &Result{State: st, Changes: changes}
	for _, p := range policies {
		if !policy.CheckState(h, st, p) {
			res.StillViolated = append(res.StillViolated, p)
		}
	}
	res.Clean = len(res.StillViolated) == 0
	return res, nil
}

const bigCap = int64(1) << 40

// removableCap gives unit capacity to edges an ACL can remove and
// effectively infinite capacity to intra-device edges.
func removableCap(etg *arc.ETG) func(graph.E) int64 {
	return func(e graph.E) int64 {
		s := etg.SlotOf[e]
		if s == nil {
			return bigCap
		}
		switch s.Kind {
		case arc.SlotInterDevice, arc.SlotSource, arc.SlotDest:
			return 1
		}
		return bigCap
	}
}

// repairPC1 removes the tcETG's min-cut (over ACL-removable edges) at
// the traffic-class level: one ACL application per cut edge (§5's
// "compute the tcETG's min-cut and remove all edges in the min-cut").
func repairPC1(h *harc.HARC, st *harc.State, p policy.Policy) (int, error) {
	etg := harc.BuildTCETGFromState(h, st, p.TC)
	cut := etg.G.MinCut(etg.Src, etg.Dst, removableCap(etg))
	if len(cut) == 0 && etg.G.PathExists(etg.Src, etg.Dst) {
		return 0, fmt.Errorf("greedy: PC1 min-cut failed for %s", p.TC)
	}
	m := st.TC[p.TC.Key()]
	for _, e := range cut {
		m[etg.SlotOf[e].Key()] = false
	}
	return len(cut), nil
}

// repairPC2 adds waypoints on the min-cut of the waypoint-free subgraph
// (§5's "temporarily remove all waypoint vertices, compute the min-cut,
// and add waypoints on the edges in the min-cut").
func repairPC2(h *harc.HARC, st *harc.State, p policy.Policy) (int, error) {
	etg := harc.BuildTCETGFromState(h, st, p.TC)
	// Remove already-waypointed edges, then cut what remains.
	removed := []graph.E{}
	etg.G.Edges(func(e graph.E, _ graph.Edge) {
		if etg.WaypointEdge(e) {
			removed = append(removed, e)
		}
	})
	for _, e := range removed {
		etg.G.RemoveEdge(e)
	}
	// Only inter-device edges can host a middlebox.
	capOf := func(e graph.E) int64 {
		if s := etg.SlotOf[e]; s != nil && s.Kind == arc.SlotInterDevice {
			return 1
		}
		return bigCap
	}
	cut := etg.G.MinCut(etg.Src, etg.Dst, capOf)
	if len(cut) == 0 && etg.G.PathExists(etg.Src, etg.Dst) {
		return 0, fmt.Errorf("greedy: PC2 has no inter-device cut for %s", p.TC)
	}
	n := 0
	for _, e := range cut {
		s := etg.SlotOf[e]
		if s.Kind != arc.SlotInterDevice {
			return 0, fmt.Errorf("greedy: PC2 cut contains non-link edge %s", s.Key())
		}
		if !st.Waypoint[s.Link.Name()] {
			st.Waypoint[s.Link.Name()] = true
			n++
		}
	}
	return n, nil
}

// repairPC3 builds the all-candidates tcETG, extracts K link-disjoint
// paths by max-flow, and materializes every missing edge (§5's "construct
// a tcETG containing all possible edges, compute the max-flow, and add
// the edges in the paths"). dETG-level additions become static routes,
// tcETG-level additions ACL removals.
func repairPC3(h *harc.HARC, st *harc.State, p policy.Policy) (int, error) {
	full, slotOf := candidateETG(h, p.TC)
	src, dst := full.Vertex("SRC"), full.Vertex("DST")
	capOf := func(e graph.E) int64 {
		if s := slotOf[e]; s != nil && s.Kind == arc.SlotInterDevice {
			return 1
		}
		return bigCap
	}
	paths := full.DisjointPaths(src, dst, capOf)
	if len(paths) < p.K {
		return 0, fmt.Errorf("greedy: topology supports only %d disjoint paths for %s (need %d)", len(paths), p.TC, p.K)
	}
	changes := 0
	m := st.TC[p.TC.Key()]
	dm := st.Dst[p.TC.Dst.Name]
	for _, path := range paths[:p.K] {
		for i := 0; i+1 < len(path); i++ {
			e := full.FindEdge(path[i], path[i+1])
			s := slotOf[e]
			key := s.Key()
			if s.Kind != arc.SlotSource && !dm[key] {
				dm[key] = true // realized by a static route
				changes++
			}
			if !m[key] {
				m[key] = true // realized by removing an ACL deny
				changes++
			}
		}
	}
	return changes, nil
}

// candidateETG builds the graph of every candidate slot for tc ("all
// possible edges"), ignoring current presence.
func candidateETG(h *harc.HARC, tc topology.TrafficClass) (*graph.Digraph, map[graph.E]*arc.Slot) {
	g := graph.New()
	slotOf := map[graph.E]*arc.Slot{}
	g.AddVertex("SRC")
	g.AddVertex("DST")
	for _, s := range h.Slots {
		switch s.Kind {
		case arc.SlotSource:
			if s.Subnet != tc.Src {
				continue
			}
		case arc.SlotDest:
			if s.Subnet != tc.Dst {
				continue
			}
		}
		from := g.AddVertex(s.FromVertex())
		to := g.AddVertex(s.ToVertex())
		e := g.AddEdge(from, to, 1)
		slotOf[e] = s
	}
	return g, slotOf
}
