package greedy_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/generate"
	"repro/internal/greedy"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/topology"
)

func tcOf(n *topology.Network, src, dst string) topology.TrafficClass {
	return topology.TrafficClass{Src: n.Subnet(src), Dst: n.Subnet(dst)}
}

func TestGreedyPC1(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	p := policy.Policy{Kind: policy.AlwaysBlocked, TC: tcOf(n, "S", "T")}
	res, err := greedy.Repair(h, []policy.Policy{p})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Fatalf("greedy PC1 failed: still violated %v", res.StillViolated)
	}
	if res.Changes == 0 {
		t.Error("expected changes")
	}
}

func TestGreedyPC2(t *testing.T) {
	n := topology.Figure2a()
	n.Link("B", "C").Waypoint = false // break EP2
	h := harc.Build(n)
	p := policy.Policy{Kind: policy.AlwaysWaypoint, TC: tcOf(n, "S", "T")}
	res, err := greedy.Repair(h, []policy.Policy{p})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Fatalf("greedy PC2 failed: %v", res.StillViolated)
	}
	// A waypoint must have been added somewhere.
	added := false
	for _, v := range res.State.Waypoint {
		if v {
			added = true
		}
	}
	if !added {
		t.Error("no waypoint added")
	}
}

func TestGreedyPC3(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	p := policy.Policy{Kind: policy.KReachable, K: 2, TC: tcOf(n, "S", "T")}
	res, err := greedy.Repair(h, []policy.Policy{p})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Fatalf("greedy PC3 failed: %v", res.StillViolated)
	}
}

func TestGreedyPC4Unsupported(t *testing.T) {
	n := topology.Figure2a()
	n.Device("A").Interface("Ethernet0/1").Cost = 9 // break EP4 somehow irrelevant
	h := harc.Build(n)
	p := policy.Policy{Kind: policy.PrimaryPath, Path: []string{"A", "C"}, TC: tcOf(n, "R", "T")}
	if _, err := greedy.Repair(h, []policy.Policy{p}); err == nil {
		t.Error("PC4 should be unsupported by the greedy baseline")
	}
}

// TestGreedyCrossPolicyBreakage demonstrates §2.2's challenge #1: fixing
// EP3 greedily (adding paths) can violate EP2 (the new path bypasses the
// firewall), which the greedy baseline does not notice until the end.
func TestGreedyCrossPolicyBreakage(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	ps := []policy.Policy{
		{Kind: policy.AlwaysWaypoint, TC: tcOf(n, "S", "T")},   // EP2 (holds)
		{Kind: policy.KReachable, K: 2, TC: tcOf(n, "S", "T")}, // EP3 (violated)
		{Kind: policy.AlwaysBlocked, TC: tcOf(n, "S", "U")},    // EP1 (holds)
	}
	res, err := greedy.Repair(h, ps)
	if err != nil {
		t.Fatal(err)
	}
	// The greedy fix for EP3 adds the A->C path without a waypoint,
	// breaking EP2 — unless it got lucky with path selection. Either way
	// CPR must do at least as well on change count when both succeed.
	cprRes, err := core.Repair(h, ps, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !cprRes.Solved {
		t.Fatal("CPR should solve this specification")
	}
	if bad := core.VerifyRepair(h, cprRes.State, ps); len(bad) != 0 {
		t.Fatalf("CPR repair invalid: %v", bad)
	}
	if res.Clean && res.Changes < cprRes.Changes {
		t.Errorf("greedy clean with %d changes but CPR needed %d — CPR should be minimal",
			res.Changes, cprRes.Changes)
	}
	t.Logf("greedy: clean=%v changes=%d stillViolated=%v; CPR: changes=%d",
		res.Clean, res.Changes, res.StillViolated, cprRes.Changes)
}

func TestGreedySatisfiedSpecIsNoOp(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	ps := []policy.Policy{
		{Kind: policy.AlwaysBlocked, TC: tcOf(n, "S", "U")},
		{Kind: policy.AlwaysWaypoint, TC: tcOf(n, "S", "T")},
	}
	res, err := greedy.Repair(h, ps)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean || res.Changes != 0 {
		t.Errorf("satisfied spec should be a no-op: %+v", res)
	}
}

func TestGreedyImpossiblePC3(t *testing.T) {
	// Figure2a has at most 2 disjoint paths between S and T; asking for 3
	// must fail loudly.
	n := topology.Figure2a()
	h := harc.Build(n)
	p := policy.Policy{Kind: policy.KReachable, K: 3, TC: tcOf(n, "S", "T")}
	if _, err := greedy.Repair(h, []policy.Policy{p}); err == nil {
		t.Error("impossible PC3 should error")
	}
}

// TestGreedyNeverBeatsOptimal sweeps generated data-center instances
// (PC1/PC3 specifications — the classes the baseline supports) and checks
// the defining property of the MaxSMT formulation: whenever the greedy
// baseline produces a repair that satisfies the whole specification, its
// change count is at least the optimum found at all-tcs granularity.
func TestGreedyNeverBeatsOptimal(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Granularity = core.AllTCs
	for seed := int64(1); seed <= 4; seed++ {
		inst, err := generate.DataCenter(generate.DCOptions{
			Name: "greedy-vs-opt", Routers: 6, Subnets: 8,
			BlockedFrac: 0.4, FullyBlockedDsts: 1, Violations: 3, Seed: seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		h := inst.Harc()
		g, err := greedy.Repair(h, inst.Policies)
		if err != nil {
			t.Fatalf("seed %d: greedy: %v", seed, err)
		}
		res, err := core.Repair(h, inst.Policies, opts)
		if err != nil {
			t.Fatalf("seed %d: core: %v", seed, err)
		}
		if !res.Solved {
			t.Fatalf("seed %d: all-tcs repair did not solve", seed)
		}
		if bad := core.VerifyRepair(h, res.State, inst.Policies); len(bad) != 0 {
			t.Fatalf("seed %d: optimal repair leaves violations: %v", seed, bad)
		}
		if g.Clean && g.Changes < res.Changes {
			t.Errorf("seed %d: greedy clean with %d changes, below the optimum %d",
				seed, g.Changes, res.Changes)
		}
		t.Logf("seed %d: greedy clean=%v changes=%d; optimal changes=%d",
			seed, g.Clean, g.Changes, res.Changes)
	}
}
