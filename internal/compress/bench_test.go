package compress

import (
	"testing"

	"repro/internal/generate"
	"repro/internal/topology"
)

// benchInput generates the fattree-k8 preset (80 routers) and the
// compression request for one of its policies' traffic classes — the
// same shape internal/core submits per repair sub-problem.
func benchInput(b *testing.B) (*topology.Network, Spec) {
	b.Helper()
	inst, err := generate.Preset("fattree-k8", 11)
	if err != nil {
		b.Fatal(err)
	}
	return inst.Network, Spec{
		TCs:        []topology.TrafficClass{inst.Policies[0].TC},
		Redundancy: 2,
	}
}

// BenchmarkCompressRefine isolates the partition-refinement fixed point:
// class seeding on configuration shape plus neighborhood rounds.
func BenchmarkCompressRefine(b *testing.B) {
	n, spec := benchInput(b)
	relevant := make(map[*topology.Subnet]bool)
	for _, tc := range spec.TCs {
		relevant[tc.Src] = true
		relevant[tc.Dst] = true
	}
	concrete := make(map[string]bool)
	for _, d := range n.Devices() {
		for _, intf := range d.Interfaces() {
			if intf.Subnet != nil && relevant[intf.Subnet] {
				concrete[d.Name] = true
				break
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		part := refine(n, relevant, concrete)
		if len(part.classes) == 0 {
			b.Fatal("empty partition")
		}
	}
}

// BenchmarkCompressQuotientBuild times the full front end: refinement
// plus quotient network synthesis and validation.
func BenchmarkCompressQuotientBuild(b *testing.B) {
	n, spec := benchInput(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := Build(n, spec)
		if err != nil {
			b.Fatal(err)
		}
		if q.Net.NumDevices() >= n.NumDevices() {
			b.Fatal("quotient not smaller")
		}
	}
}
