package compress

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/topology"
)

// partition is an equivalence partition of a network's devices.
type partition struct {
	classOf map[string]int // device name → class index
	classes [][]string     // class index → sorted member names
}

// refine computes the coarsest role-equivalence partition that the seed
// signatures and neighborhood structure support. The seed splits on
// everything locally observable in a device's configuration; each
// refinement round re-splits on the multiset of incident edge
// signatures (peer class plus both endpoints' edge attributes) until
// the partition reaches a fixed point. Classes only ever split, so the
// loop terminates in at most |devices| rounds.
func refine(n *topology.Network, relevant map[*topology.Subnet]bool, concrete map[string]bool) *partition {
	devs := n.Devices()
	sigs := make(map[string]string, len(devs))
	for _, d := range devs {
		sigs[d.Name] = seedSig(d, relevant, concrete)
	}
	part := groupBySig(devs, sigs)
	for {
		for _, d := range devs {
			sigs[d.Name] = roundSig(d, part.classOf)
		}
		next := groupBySig(devs, sigs)
		if len(next.classes) == len(part.classes) {
			return next
		}
		part = next
	}
}

// groupBySig partitions devices by signature, assigning class indices
// in sorted-signature order so the numbering is deterministic.
func groupBySig(devs []*topology.Device, sigs map[string]string) *partition {
	members := make(map[string][]string)
	for _, d := range devs {
		s := sigs[d.Name]
		members[s] = append(members[s], d.Name)
	}
	order := make([]string, 0, len(members))
	for s := range members {
		order = append(order, s)
	}
	sort.Strings(order)
	p := &partition{classOf: make(map[string]int, len(devs))}
	for _, s := range order {
		ms := members[s]
		sort.Strings(ms)
		for _, name := range ms {
			p.classOf[name] = len(p.classes)
		}
		p.classes = append(p.classes, ms)
	}
	return p
}

// seedSig renders everything locally observable about a device: policy
// endpoints stay singletons, and the protocol mix, redistribution
// graph, route filters, static routes, host attachments, ACL contents,
// link costs and waypoint role all split the partition. Differing in a
// single ACL entry, link weight or static route therefore lands two
// otherwise identical devices in distinct classes.
func seedSig(d *topology.Device, relevant map[*topology.Subnet]bool, concrete map[string]bool) string {
	var b strings.Builder
	if concrete[d.Name] {
		// Policy endpoints are pinned concrete by name.
		b.WriteString("!" + d.Name + "\n")
	}
	if d.Waypoint {
		b.WriteString("wp\n")
	}
	for _, p := range sortedProcs(d) {
		fmt.Fprintf(&b, "proc %s%d rc=%t", p.Proto, p.ID, p.RedistributeConnected)
		var redist []string
		for _, rp := range p.RedistributesFrom {
			redist = append(redist, fmt.Sprintf("%s%d", rp.Proto, rp.ID))
		}
		sort.Strings(redist)
		b.WriteString(" redist=" + strings.Join(redist, ","))
		var filters []string
		for _, f := range p.RouteFilters {
			filters = append(filters, f.String())
		}
		sort.Strings(filters)
		b.WriteString(" filter=" + strings.Join(filters, ",") + "\n")
	}
	var statics []string
	for _, sr := range d.Statics {
		// Next-hop addresses are link-local and differ across otherwise
		// symmetric members; where the route points is captured by the
		// neighborhood rounds (roundSig resolves the next hop's device).
		statics = append(statics, fmt.Sprintf("st %s d%d", sr.Prefix, sr.Distance))
	}
	sort.Strings(statics)
	for _, s := range statics {
		b.WriteString(s + "\n")
	}
	var intfs []string
	for _, intf := range d.Interfaces() {
		switch {
		case intf.Subnet != nil:
			if !relevant[intf.Subnet] {
				// Irrelevant subnets contribute no slots to the problem
				// and are dropped from the quotient entirely.
				continue
			}
			intfs = append(intfs, "sub "+intf.Subnet.Name+" "+intfAttrSig(d, intf))
		case intf.Link != nil:
			intfs = append(intfs, "lnk "+intfAttrSig(d, intf))
		}
	}
	sort.Strings(intfs)
	for _, s := range intfs {
		b.WriteString(s + "\n")
	}
	return b.String()
}

// intfAttrSig renders one interface's slot-relevant attributes: cost,
// ACL contents, link waypoint, and which processes run over it (and
// whether passively).
func intfAttrSig(d *topology.Device, intf *topology.Interface) string {
	var procs []string
	for _, p := range d.Processes {
		if p.UsesInterface(intf) {
			tag := fmt.Sprintf("%s%d", p.Proto, p.ID)
			if p.IsPassive(intf) {
				tag += "~"
			}
			procs = append(procs, tag)
		}
	}
	sort.Strings(procs)
	wp := intf.Link != nil && intf.Link.Waypoint
	return fmt.Sprintf("c%d wp=%t in=%s out=%s use=%s",
		intf.Cost, wp, aclSig(d, intf.InACL), aclSig(d, intf.OutACL), strings.Join(procs, ","))
}

// aclSig renders an ACL reference by name and full entry list, so a
// one-entry difference splits the class.
func aclSig(d *topology.Device, name string) string {
	if name == "" {
		return "-"
	}
	a := d.ACLs[name]
	if a == nil {
		return "!" + name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, e := range a.Entries {
		b.WriteByte(';')
		if e.Permit {
			b.WriteByte('p')
		} else {
			b.WriteByte('d')
		}
		b.WriteString(e.Src.String())
		b.WriteByte('>')
		b.WriteString(e.Dst.String())
	}
	return b.String()
}

// roundSig renders one refinement round's view of a device: its current
// class plus the sorted multiset of incident edge signatures, each
// naming the peer's class and both endpoints' edge attributes, plus the
// class each static route's next hop resolves to.
func roundSig(d *topology.Device, classOf map[string]int) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(classOf[d.Name]))
	b.WriteByte('\n')
	var edges []string
	for _, intf := range d.Interfaces() {
		peer := intf.Peer()
		if peer == nil {
			continue
		}
		edges = append(edges, fmt.Sprintf("e c%d %s | %s | %s",
			classOf[peer.Device.Name], intfAttrSig(d, intf), intfAttrSig(peer.Device, peer), ""))
	}
	for _, sr := range d.Statics {
		pc := -1
		if peer := staticPeer(d, sr); peer != nil {
			pc = classOf[peer.Name]
		}
		edges = append(edges, fmt.Sprintf("s %s c%d", sr.Prefix, pc))
	}
	sort.Strings(edges)
	for _, e := range edges {
		b.WriteString(e + "\n")
	}
	return b.String()
}

// staticPeer resolves the device a static route's next hop points at:
// the peer device of the link interface whose far-end address equals
// the next hop (mirroring arc.Slot.StaticBacked's matching rule).
func staticPeer(d *topology.Device, sr *topology.StaticRoute) *topology.Device {
	for _, intf := range d.Interfaces() {
		peer := intf.Peer()
		if peer != nil && peer.Prefix.IsValid() && peer.Prefix.Addr() == sr.NextHop {
			return peer.Device
		}
	}
	return nil
}

// sortedProcs returns the device's processes ordered by (proto, id).
func sortedProcs(d *topology.Device) []*topology.Process {
	out := append([]*topology.Process(nil), d.Processes...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Proto != out[j].Proto {
			return out[i].Proto < out[j].Proto
		}
		return out[i].ID < out[j].ID
	})
	return out
}
