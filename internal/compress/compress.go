// Package compress implements Bonsai-style symmetry compression for
// control plane repair: it collapses role-equivalent routers into a
// quotient network small enough to encode and solve cheaply, then lets
// the caller concretize the abstract patch back onto every class member
// ("Control Plane Compression", Beckett et al., SIGCOMM 2018, adapted
// to CPR's per-destination repair problems).
//
// The pipeline is: seed a partition of the devices on local
// configuration shape (protocol mix, redistribution, route filters,
// static routes, ACL signatures, link costs, waypoint role), refine it
// against the neighborhood structure to a fixed point (two devices stay
// merged only if their incident edges lead to matching classes with
// matching edge attributes), then synthesize a quotient
// topology.Network that keeps a bounded number of representative
// members per class and rewires cross-class links onto them.
//
// Compression is deliberately heuristic: the quotient repair is only
// trusted after the concretized patch re-verifies on the uncompressed
// network (internal/core falls back to uncompressed repair otherwise),
// so the refiner may safely over-merge in corner cases. Splitting too
// eagerly merely costs compression ratio, never correctness.
package compress

import (
	"fmt"

	"repro/internal/topology"
)

// Spec describes one compression request: the traffic classes of the
// sub-problem being repaired (their endpoint subnets stay concrete) and
// the per-class redundancy.
type Spec struct {
	// TCs are the traffic classes of the repair sub-problem. Subnets not
	// referenced by any of them are irrelevant to the problem and are
	// dropped from the quotient along with their attachment interfaces.
	TCs []topology.TrafficClass
	// Redundancy is the number of representative members kept per
	// equivalence class (minimum 1). Keeping k members preserves
	// k-link-disjoint path structure through a class, so callers should
	// use at least the largest PC3 K of the problem. Values at or above
	// the largest class size make the quotient lossless.
	Redundancy int
}

// Class is one role-equivalence class of devices.
type Class struct {
	// Members lists the concrete device names, sorted.
	Members []string
	// Kept lists the members present in the quotient (a prefix of
	// Members of length min(Redundancy, len(Members))).
	Kept []string
}

// Quotient is a compressed view of a network.
type Quotient struct {
	// Net is the synthesized quotient network. Device, interface,
	// process, subnet and ACL names of kept devices match the concrete
	// network, so HARC slot keys on kept devices coincide with their
	// concrete counterparts.
	Net *topology.Network
	// Classes are the role-equivalence classes, in deterministic order.
	Classes []Class
	// ClassOf maps every concrete device name to its class index.
	ClassOf map[string]int
	// Rep maps every concrete device name to its assigned kept
	// representative (member i of a class maps to kept member i mod k,
	// so representatives are themselves their own reps). Quotient-side
	// repairs on a representative are concretized onto exactly the
	// members assigned to it.
	Rep map[string]string
	// Devices is the concrete network's device count.
	Devices int
	// DroppedLinks counts concrete links with no quotient image (both
	// ends dropped, or all candidate rewire targets already linked).
	DroppedLinks int
}

// Ratio returns the device-count compression ratio (concrete devices
// per quotient device); 1.0 means no compression.
func (q *Quotient) Ratio() float64 {
	if q.Net.NumDevices() == 0 {
		return 1
	}
	return float64(q.Devices) / float64(q.Net.NumDevices())
}

// Members returns the concrete members of the class containing dev.
func (q *Quotient) Members(dev string) []string {
	ci, ok := q.ClassOf[dev]
	if !ok {
		return nil
	}
	return q.Classes[ci].Members
}

// Build computes role-equivalence classes for n and synthesizes the
// quotient network. Devices attached to a subnet referenced by spec.TCs
// are policy endpoints and stay concrete (singleton classes). The
// returned quotient is structurally valid (Net.Validate passes) but not
// guaranteed to be behaviorally equivalent — callers must re-verify
// concretized repairs on the uncompressed network.
func Build(n *topology.Network, spec Spec) (*Quotient, error) {
	if len(spec.TCs) == 0 {
		return nil, fmt.Errorf("compress: no traffic classes")
	}
	r := spec.Redundancy
	if r < 1 {
		r = 1
	}
	relevant := make(map[*topology.Subnet]bool)
	for _, tc := range spec.TCs {
		relevant[tc.Src] = true
		relevant[tc.Dst] = true
	}
	concrete := make(map[string]bool)
	for _, d := range n.Devices() {
		for _, intf := range d.Interfaces() {
			if intf.Subnet != nil && relevant[intf.Subnet] {
				concrete[d.Name] = true
				break
			}
		}
	}
	part := refine(n, relevant, concrete)
	return synthesize(n, part, r, relevant)
}
