package compress

import (
	"net/netip"
	"testing"

	"repro/internal/topology"
)

func mp(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// diamond builds the minimal symmetric quotient fixture: src—s, two
// interchangeable transit routers m1/m2, and t—dst. With identical
// configurations, m1 and m2 must merge; each negative test perturbs one
// attribute on m2 and asserts the pair splits.
func diamond() *topology.Network {
	n := topology.NewNetwork()
	src := n.AddSubnet("src", mp("10.1.0.0/24"))
	dst := n.AddSubnet("dst", mp("10.2.0.0/24"))
	s := n.AddDevice("s")
	m1 := n.AddDevice("m1")
	m2 := n.AddDevice("m2")
	tdev := n.AddDevice("t")
	hs := s.AddInterface("h0")
	hs.Prefix, hs.Subnet = mp("10.1.0.1/24"), src
	ht := tdev.AddInterface("h0")
	ht.Prefix, ht.Subnet = mp("10.2.0.1/24"), dst
	link := func(a *topology.Device, an, ap string, b *topology.Device, bn, bp string) {
		ia := a.AddInterface(an)
		ia.Prefix = mp(ap)
		ib := b.AddInterface(bn)
		ib.Prefix = mp(bp)
		n.AddLink(ia, ib)
	}
	link(s, "e1", "10.0.1.1/30", m1, "e0", "10.0.1.2/30")
	link(s, "e2", "10.0.2.1/30", m2, "e0", "10.0.2.2/30")
	link(m1, "e1", "10.0.3.1/30", tdev, "e1", "10.0.3.2/30")
	link(m2, "e1", "10.0.4.1/30", tdev, "e2", "10.0.4.2/30")
	for _, d := range n.Devices() {
		p := d.AddProcess(topology.OSPF, 1)
		p.Passive = map[string]bool{}
		for _, i := range d.Interfaces() {
			p.Interfaces = append(p.Interfaces, i)
			if i.Subnet != nil {
				p.Passive[i.Name] = true
			}
		}
	}
	return n
}

func buildDiamond(t *testing.T, n *topology.Network) *Quotient {
	t.Helper()
	tc := topology.TrafficClass{Src: n.Subnet("src"), Dst: n.Subnet("dst")}
	q, err := Build(n, Spec{TCs: []topology.TrafficClass{tc}, Redundancy: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Net.Validate(); err != nil {
		t.Fatalf("quotient does not validate: %v", err)
	}
	return q
}

func TestDiamondMergesSymmetricTransits(t *testing.T) {
	q := buildDiamond(t, diamond())
	if q.ClassOf["m1"] != q.ClassOf["m2"] {
		t.Fatalf("identical transit routers in distinct classes %d and %d",
			q.ClassOf["m1"], q.ClassOf["m2"])
	}
	// Endpoint-attached devices are policy-concrete: never merged away.
	if q.ClassOf["s"] == q.ClassOf["t"] {
		t.Fatal("endpoint devices s and t merged")
	}
	for _, name := range []string{"s", "t"} {
		if got := len(q.Members(name)); got != 1 {
			t.Fatalf("endpoint device %s in a class of %d members", name, got)
		}
	}
}

// The negative-merge suite: a single differing attribute must split an
// otherwise role-equivalent pair. Over-merging here would hand the
// solver a quotient whose repairs cannot concretize soundly (caught
// later by re-verification, but at the cost of a wasted solve).

func TestACLLineSplitsClass(t *testing.T) {
	n := diamond()
	for _, name := range []string{"m1", "m2"} {
		d := n.Device(name)
		acl := d.AddACL("blk")
		acl.Entries = append(acl.Entries, topology.ACLEntry{Permit: true})
		d.Interface("e0").InACL = "blk"
	}
	// One extra deny line on m2's copy of the same-named ACL.
	m2 := n.Device("m2")
	m2.ACLs["blk"].Entries = append([]topology.ACLEntry{
		{Permit: false, Src: mp("10.1.0.0/24"), Dst: mp("10.2.0.0/24")},
	}, m2.ACLs["blk"].Entries...)
	q := buildDiamond(t, n)
	if q.ClassOf["m1"] == q.ClassOf["m2"] {
		t.Fatal("routers differing in one ACL line merged")
	}
}

func TestLinkWeightSplitsClass(t *testing.T) {
	n := diamond()
	n.Device("m2").Interface("e1").Cost = 5
	q := buildDiamond(t, n)
	if q.ClassOf["m1"] == q.ClassOf["m2"] {
		t.Fatal("routers differing in one link weight merged")
	}
}

func TestStaticRouteSplitsClass(t *testing.T) {
	n := diamond()
	n.Device("m2").AddStatic(mp("10.2.0.0/24"), netip.MustParseAddr("10.0.4.2"), 1)
	q := buildDiamond(t, n)
	if q.ClassOf["m1"] == q.ClassOf["m2"] {
		t.Fatal("a static route on one router of the pair did not split it")
	}
}

func TestRouteFilterSplitsClass(t *testing.T) {
	n := diamond()
	p := n.Device("m2").Process(topology.OSPF, 1)
	p.RouteFilters = append(p.RouteFilters, mp("10.2.0.0/24"))
	q := buildDiamond(t, n)
	if q.ClassOf["m1"] == q.ClassOf["m2"] {
		t.Fatal("a route filter on one router of the pair did not split it")
	}
}

func TestNeighborhoodSplitsClass(t *testing.T) {
	// m1 and m2 stay locally identical, but m2 gains a stub neighbor:
	// the fixed-point refinement must separate them on structure alone.
	n := diamond()
	stub := n.AddDevice("stub")
	is := stub.AddInterface("e0")
	is.Prefix = mp("10.0.5.2/30")
	im := n.Device("m2").AddInterface("e9")
	im.Prefix = mp("10.0.5.1/30")
	n.AddLink(im, is)
	sp := stub.AddProcess(topology.OSPF, 1)
	sp.Interfaces = append(sp.Interfaces, is)
	mp2 := n.Device("m2").Process(topology.OSPF, 1)
	mp2.Interfaces = append(mp2.Interfaces, im)
	q := buildDiamond(t, n)
	if q.ClassOf["m1"] == q.ClassOf["m2"] {
		t.Fatal("routers with different neighborhoods merged")
	}
}
