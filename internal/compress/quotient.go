package compress

import (
	"fmt"
	"net/netip"

	"repro/internal/topology"
)

// synthesize builds the quotient network for a refined partition: each
// class keeps min(r, size) representative members, cloned verbatim;
// links between two kept devices are cloned; links from a kept device
// to a dropped one are rewired onto a kept member of the dropped
// device's class (cloning the dropped end's interface, address
// included, so static-route next hops keep resolving); links between
// two dropped devices vanish. Interfaces attached to irrelevant
// subnets are omitted — they contribute no slots to the problem.
func synthesize(n *topology.Network, part *partition, r int, relevant map[*topology.Subnet]bool) (*Quotient, error) {
	q := &Quotient{
		ClassOf: part.classOf,
		Rep:     make(map[string]string, len(part.classOf)),
		Devices: n.NumDevices(),
	}
	kept := make(map[string]bool)
	for _, members := range part.classes {
		k := r
		if k > len(members) {
			k = len(members)
		}
		c := Class{Members: members, Kept: members[:k]}
		q.Classes = append(q.Classes, c)
		for i, m := range members {
			q.Rep[m] = c.Kept[i%k]
		}
		for _, m := range c.Kept {
			kept[m] = true
		}
	}

	qn := topology.NewNetwork()
	subnets := make(map[string]*topology.Subnet)
	for _, s := range n.Subnets {
		if relevant[s] {
			subnets[s.Name] = qn.AddSubnet(s.Name, s.Prefix)
		}
	}
	for _, d := range n.Devices() {
		if kept[d.Name] {
			cloneDevice(qn, d, subnets, relevant)
		}
	}

	// Pass 1: clone links whose both endpoints survive.
	type pair struct{ a, b string }
	linked := make(map[pair]bool)
	for _, l := range n.Links {
		da, db := l.A.Device.Name, l.B.Device.Name
		if !kept[da] || !kept[db] {
			continue
		}
		qa := cloneLinkIntf(qn.Device(da), l.A, l.A.Name, l.A.Device)
		qb := cloneLinkIntf(qn.Device(db), l.B, l.B.Name, l.B.Device)
		qn.AddLink(qa, qb).Waypoint = l.Waypoint
		linked[pair{da, db}] = true
		linked[pair{db, da}] = true
	}
	// Pass 2: rewire links with exactly one surviving endpoint onto a
	// kept member of the dropped class not already adjacent.
	for _, l := range n.Links {
		ku, iv := l.A, l.B
		if kept[iv.Device.Name] {
			ku, iv = iv, ku
		}
		if !kept[ku.Device.Name] || kept[iv.Device.Name] {
			if !kept[ku.Device.Name] {
				q.DroppedLinks++ // both ends dropped
			}
			continue
		}
		u, v := ku.Device.Name, iv.Device.Name
		target := ""
		for _, t := range q.Classes[part.classOf[v]].Kept {
			if t != u && !linked[pair{u, t}] {
				target = t
				break
			}
		}
		if target == "" {
			q.DroppedLinks++
			continue
		}
		qu := cloneLinkIntf(qn.Device(u), ku, ku.Name, ku.Device)
		// The foreign interface keeps its concrete address (static-route
		// next hops match on it) under a collision-free name.
		qt := cloneLinkIntf(qn.Device(target), iv, iv.Name+"~"+v, iv.Device)
		qn.AddLink(qu, qt).Waypoint = l.Waypoint
		linked[pair{u, target}] = true
		linked[pair{target, u}] = true
	}

	if err := qn.Validate(); err != nil {
		return nil, fmt.Errorf("compress: quotient invalid: %w", err)
	}
	q.Net = qn
	return q, nil
}

// cloneDevice copies a device's waypoint role, ACLs, processes
// (redistribution wired up within the device), static routes, and its
// host-facing interfaces on relevant subnets. Link interfaces are added
// later, per surviving link.
func cloneDevice(qn *topology.Network, d *topology.Device, subnets map[string]*topology.Subnet, relevant map[*topology.Subnet]bool) {
	qd := qn.AddDevice(d.Name)
	qd.Waypoint = d.Waypoint
	for _, name := range d.ACLNames() {
		a := d.ACLs[name]
		qa := qd.AddACL(name)
		qa.Entries = append([]topology.ACLEntry(nil), a.Entries...)
	}
	for _, p := range d.Processes {
		qp := qd.AddProcess(p.Proto, p.ID)
		qp.RedistributeConnected = p.RedistributeConnected
		qp.RouteFilters = append([]netip.Prefix(nil), p.RouteFilters...)
	}
	for _, p := range d.Processes {
		qp := qd.Process(p.Proto, p.ID)
		for _, rp := range p.RedistributesFrom {
			qp.RedistributesFrom = append(qp.RedistributesFrom, qd.Process(rp.Proto, rp.ID))
		}
	}
	for _, sr := range d.Statics {
		qd.AddStatic(sr.Prefix, sr.NextHop, sr.Distance)
	}
	for _, intf := range d.Interfaces() {
		if intf.Subnet == nil || !relevant[intf.Subnet] {
			continue
		}
		qi := qd.AddInterface(intf.Name)
		qi.Prefix = intf.Prefix
		qi.Cost = intf.Cost
		qi.InACL = intf.InACL
		qi.OutACL = intf.OutACL
		qi.Subnet = subnets[intf.Subnet.Name]
		enrollIntf(qd, qi, intf)
	}
}

// cloneLinkIntf clones one link endpoint interface onto quotient device
// qd under the given name, importing any ACLs it references from the
// (possibly different) source device, and enrolls it in the matching
// processes.
func cloneLinkIntf(qd *topology.Device, src *topology.Interface, name string, srcDev *topology.Device) *topology.Interface {
	qi := qd.AddInterface(name)
	qi.Prefix = src.Prefix
	qi.Cost = src.Cost
	qi.InACL = importACL(qd, srcDev, src.InACL)
	qi.OutACL = importACL(qd, srcDev, src.OutACL)
	enrollIntf(qd, qi, src)
	return qi
}

// enrollIntf registers the cloned interface qi with every quotient
// process matching a source-device process that ran over the source
// interface, preserving passivity.
func enrollIntf(qd *topology.Device, qi *topology.Interface, src *topology.Interface) {
	for _, p := range src.Device.Processes {
		if !p.UsesInterface(src) {
			continue
		}
		qp := qd.Process(p.Proto, p.ID)
		if qp == nil {
			continue // class mismatch; re-verification will catch any fallout
		}
		qp.Interfaces = append(qp.Interfaces, qi)
		if p.IsPassive(src) {
			if qp.Passive == nil {
				qp.Passive = make(map[string]bool)
			}
			qp.Passive[qi.Name] = true
		}
	}
}

// importACL ensures the ACL referenced by a foreign interface exists on
// the target device, reusing an existing ACL when the content matches
// and cloning under a suffixed name otherwise.
func importACL(qd *topology.Device, srcDev *topology.Device, name string) string {
	if name == "" {
		return ""
	}
	src := srcDev.ACLs[name]
	if src == nil {
		return ""
	}
	if qd == nil {
		return name
	}
	if existing := qd.ACLs[name]; existing != nil {
		if aclSig(qd, name) == aclSig(srcDev, name) {
			return name
		}
		alias := name + "~" + srcDev.Name
		if qd.ACLs[alias] == nil {
			qa := qd.AddACL(alias)
			qa.Entries = append([]topology.ACLEntry(nil), src.Entries...)
		}
		return alias
	}
	qa := qd.AddACL(name)
	qa.Entries = append([]topology.ACLEntry(nil), src.Entries...)
	return name
}
