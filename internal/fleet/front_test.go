package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	cpr "repro"
	"repro/internal/config"
	"repro/internal/faultinject"
	"repro/internal/server"
)

// testFleet is an in-process fleet: n cprd workers behind one front.
type testFleet struct {
	front   *Front
	frontTS *httptest.Server
	workers []*httptest.Server
}

func newFleet(t *testing.T, n int, cfg Config) *testFleet {
	t.Helper()
	tf := &testFleet{}
	for i := 0; i < n; i++ {
		ts := httptest.NewServer(server.New(server.Config{}).Handler())
		tf.workers = append(tf.workers, ts)
		cfg.Replicas = append(cfg.Replicas, ts.URL)
	}
	tf.front = New(cfg)
	tf.frontTS = httptest.NewServer(tf.front.Handler())
	t.Cleanup(tf.close)
	return tf
}

func (tf *testFleet) close() {
	tf.frontTS.Close()
	tf.front.Close()
	for _, ts := range tf.workers {
		ts.Close()
	}
}

// addWorker spins up a fresh cprd and joins it to the ring.
func (tf *testFleet) addWorker(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	tf.workers = append(tf.workers, ts)
	tf.front.AddReplica(ts.URL)
	return ts
}

// postVia posts JSON to a base URL and decodes the reply, returning the
// status and the serving replica (X-Cpr-Replica, empty when direct).
func postVia(t *testing.T, base, path string, body, out any) (int, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s: %v (body %.200s)", path, err, data)
		}
	}
	return resp.StatusCode, resp.Header.Get(ReplicaHeader)
}

func loadVia(t *testing.T, base string, configs map[string]string) server.LoadResponse {
	t.Helper()
	var lr server.LoadResponse
	st, _ := postVia(t, base, "/v1/load", server.LoadRequest{Configs: configs}, &lr)
	if st != http.StatusOK {
		t.Fatalf("load: status %d", st)
	}
	return lr
}

// canonRepair reduces a repair response to its deterministic content:
// everything except wall-clock timings and cache-warmth markers, which
// legitimately differ between replicas answering the same question.
func canonRepair(rr server.RepairResponse) string {
	probs := ""
	for _, p := range rr.Problems {
		probs += fmt.Sprintf("|%s:%s:%s:v%d:c%d", p.Label, p.Status, p.Outcome, p.Violations, p.Conflicts)
	}
	return fmt.Sprintf("solved=%v degraded=%d failed=%d changes=%d lines=%d conflicts=%d plan=%q patched=%s probs=%s",
		rr.Solved, rr.Degraded, rr.Failed, rr.Changes, rr.Lines, rr.Conflicts, rr.Plan, cpr.ContentKey(rr.PatchedConfigs), probs)
}

func TestFrontRoutesByContentAddress(t *testing.T) {
	tf := newFleet(t, 3, Config{LeaseTTL: time.Minute})
	cfgs := config.Figure2aConfigs()
	key := cpr.ContentKey(cfgs)

	lr := loadVia(t, tf.frontTS.URL, cfgs)
	if lr.Session != key {
		t.Fatalf("session %s, want content key %s", lr.Session, key)
	}
	owner := tf.front.Owner(key)
	// The same load, repeated, always lands on the ring owner.
	for i := 0; i < 3; i++ {
		var again server.LoadResponse
		st, replica := postVia(t, tf.frontTS.URL, "/v1/load", server.LoadRequest{Configs: cfgs}, &again)
		if st != http.StatusOK || replica != owner {
			t.Fatalf("load %d: status %d via %s, want 200 via owner %s", i, st, replica, owner)
		}
	}
	// Verify on the session routes to the same owner and answers like a
	// direct single-node query.
	var fleetV, directV server.VerifyResponse
	st, replica := postVia(t, tf.frontTS.URL, "/v1/verify", server.VerifyRequest{Session: key, Policies: figure2aPolicies}, &fleetV)
	if st != http.StatusOK {
		t.Fatalf("verify via front: status %d", st)
	}
	if replica != owner {
		t.Errorf("verify served by %s, want owner %s", replica, owner)
	}
	direct := httptest.NewServer(server.New(server.Config{}).Handler())
	defer direct.Close()
	loadVia(t, direct.URL, cfgs)
	if st, _ := postVia(t, direct.URL, "/v1/verify", server.VerifyRequest{Session: key, Policies: figure2aPolicies}, &directV); st != http.StatusOK {
		t.Fatalf("verify direct: status %d", st)
	}
	if fmt.Sprint(fleetV) != fmt.Sprint(directV) {
		t.Errorf("fleet verify %+v != single-node verify %+v", fleetV, directV)
	}

	// Distinct content addresses spread across replicas (64 vnodes, 81
	// variants: all three replicas should own at least one).
	seen := map[string]bool{}
	for id := 0; id < 12; id++ {
		vc, err := VariantConfigs(id)
		if err != nil {
			t.Fatalf("variant %d: %v", id, err)
		}
		seen[tf.front.Owner(cpr.ContentKey(vc))] = true
	}
	if len(seen) < 2 {
		t.Errorf("12 variants all owned by %v, want spread over >1 replica", seen)
	}
}

func TestFrontRelays404FromOwnerOnly(t *testing.T) {
	tf := newFleet(t, 3, Config{LeaseTTL: time.Minute})
	var vr server.VerifyResponse
	st, replica := postVia(t, tf.frontTS.URL, "/v1/verify", server.VerifyRequest{Session: "no-such-session", Policies: "reachable S T 2\n"}, &vr)
	if st != http.StatusNotFound {
		t.Fatalf("verify of unknown session: status %d, want 404", st)
	}
	if owner := tf.front.Owner("no-such-session"); replica != owner {
		t.Errorf("authoritative 404 served by %s, want owner %s", replica, owner)
	}
}

// TestFrontFailoverMidRequest kills the owning replica mid-repair (the
// server/repair-abort failpoint tears the connection down exactly like a
// crashed process) and requires the front to fail over to the ring
// successor — which holds the session via background replication — with
// a byte-identical answer and no goroutine leaks.
func TestFrontFailoverMidRequest(t *testing.T) {
	g0 := runtime.NumGoroutine()

	// RetriesPerReplica -1 => no same-replica retry: a transport failure
	// fails over immediately, so the exactly-once failpoint proves the
	// successor (not a retry of the primary) answered.
	tf := newFleet(t, 3, Config{RetriesPerReplica: -1, LeaseTTL: time.Minute})
	cfgs := config.Figure2aConfigs()
	key := cpr.ContentKey(cfgs)
	loadVia(t, tf.frontTS.URL, cfgs)
	// Wait out the background session replication so the successor is
	// warm before the primary dies.
	tf.front.replWG.Wait()

	cands := tf.front.Candidates(key)
	if len(cands) != 3 {
		t.Fatalf("candidates = %v, want 3", cands)
	}

	// Reference answer first: a clean single-node repair of the same set.
	direct := httptest.NewServer(server.New(server.Config{}).Handler())
	defer direct.Close()
	loadVia(t, direct.URL, cfgs)
	var want server.RepairResponse
	if st, _ := postVia(t, direct.URL, "/v1/repair", server.RepairRequest{Session: key, Policies: figure2aPolicies}, &want); st != http.StatusOK {
		t.Fatalf("direct repair: status %d", st)
	}

	if err := faultinject.Set(faultinject.ServerRepairAbort, "1*error"); err != nil {
		t.Fatalf("arming failpoint: %v", err)
	}
	defer faultinject.Reset()

	var got server.RepairResponse
	st, replica := postVia(t, tf.frontTS.URL, "/v1/repair", server.RepairRequest{Session: key, Policies: figure2aPolicies}, &got)
	if st != http.StatusOK {
		t.Fatalf("repair with primary crash: status %d, want 200 via failover", st)
	}
	if replica != cands[1] {
		t.Errorf("failover served by %s, want ring successor %s (candidates %v)", replica, cands[1], cands)
	}
	if canonRepair(got) != canonRepair(want) {
		t.Errorf("failover answer differs from single-node:\n fleet: %s\nsingle: %s", canonRepair(got), canonRepair(want))
	}
	status := tf.front.Status()
	if status.Routing.Failovers == 0 {
		t.Error("routing stats recorded no failover")
	}

	// The primary was marked down by the transport failure; a probe round
	// resurrects it (the process is still alive).
	if owner := tf.front.candidatesFor(key, kindQuery); len(owner) != 2 {
		t.Errorf("post-crash eligible candidates = %d, want 2 (primary down)", len(owner))
	}
	tf.front.ProbeNow()
	if owner := tf.front.candidatesFor(key, kindQuery); len(owner) != 3 {
		t.Errorf("post-probe eligible candidates = %d, want 3 (primary resurrected)", len(owner))
	}

	// Everything down: no goroutines may outlive the fleet.
	tf.close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= g0+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d after fleet shutdown, started with %d", runtime.NumGoroutine(), g0)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFrontRebalanceUnderChurn scales the fleet 3→2→4 while a seeded
// churn mix runs against it and requires zero failed requests: draining
// replicas finish their in-flight work, the front routes new sessions
// away immediately, and clients whose sessions moved re-load by content
// address (a reroute, not an error).
func TestFrontRebalanceUnderChurn(t *testing.T) {
	// Fast probing drives the lease clock, but the probe timeout must be
	// generous: under -race a loaded httptest server can take tens of
	// milliseconds to answer /readyz, and a timed-out probe would wrongly
	// mark a healthy replica down.
	tf := newFleet(t, 3, Config{ProbeInterval: 50 * time.Millisecond, ProbeTimeout: 2 * time.Second})
	tf.front.Start()

	done := make(chan struct{})
	var report *Report
	var traces [][]string
	var runErr error
	go func() {
		defer close(done)
		report, traces, runErr = RunLoad(LoadOptions{
			Target:   tf.frontTS.URL,
			Mix:      "churn",
			Requests: 90,
			Clients:  3,
			Sessions: 2,
			Seed:     7,
			Trace:    true,
		})
	}()

	// Scale down 3→2: drain, let the lease run out (probes stop renewing
	// a draining replica), then remove.
	time.Sleep(50 * time.Millisecond)
	victim := tf.workers[2].URL
	if !tf.front.DrainReplica(victim) {
		t.Fatalf("drain %s: unknown replica", victim)
	}
	time.Sleep(250 * time.Millisecond) // > LeaseTTL (3×50ms)
	if !tf.front.RemoveReplica(victim) {
		t.Fatalf("remove %s: unknown replica", victim)
	}
	// Scale up 2→4 under the same live load.
	time.Sleep(50 * time.Millisecond)
	tf.addWorker(t)
	tf.addWorker(t)

	<-done
	if runErr != nil {
		t.Fatalf("load run: %v", runErr)
	}
	if report.Errors != 0 {
		for c, tr := range traces {
			for i, line := range tr {
				if strings.Contains(line, "error=") {
					t.Logf("client %d op %d: %s", c, i, line)
				}
			}
		}
		t.Fatalf("rebalance under churn: %d failed requests, want 0\n%s", report.Errors, report)
	}
	if report.Requests != 90 {
		t.Errorf("requests = %d, want 90", report.Requests)
	}
	t.Logf("rebalance 3→2→4: %d requests, %d reroutes, %d sheds\n%s", report.Requests, report.Reroutes, report.Sheds, report)
}

// TestDrainLeaseSemantics pins the replica state machine: draining
// replicas take no new sessions but keep serving queries until the lease
// — no longer renewed — expires, which is the forced-takeover clock.
func TestDrainLeaseSemantics(t *testing.T) {
	now := time.Now()
	ttl := 150 * time.Millisecond
	rep := &replica{name: "r", state: stateReady, leaseUntil: now.Add(ttl)}

	if !rep.eligible(kindCreate, now) || !rep.eligible(kindQuery, now) {
		t.Fatal("ready replica should take everything")
	}

	rep.opDrain = true
	rep.observeProbe(true, false, nil, ttl, now) // probe passes, but operator drain pins draining
	if rep.eligible(kindCreate, now) {
		t.Error("draining replica must not take new sessions")
	}
	if !rep.eligible(kindQuery, now) {
		t.Error("draining replica must keep serving queries while leased")
	}
	// Probes do not renew a draining lease; once it runs out the replica
	// serves nothing, even though the process still answers probes.
	rep.observeProbe(true, false, nil, ttl, now.Add(ttl))
	if rep.eligible(kindQuery, now.Add(ttl+time.Millisecond)) {
		t.Error("expired lease must end query eligibility")
	}

	// A down replica serves nothing immediately.
	rep2 := &replica{name: "r2", state: stateReady, leaseUntil: now.Add(ttl)}
	rep2.markDown(fmt.Errorf("connection refused"))
	if rep2.eligible(kindQuery, now) {
		t.Error("down replica must not serve queries")
	}
	// ...and a passing probe resurrects it with a fresh lease.
	rep2.observeProbe(true, false, nil, ttl, now)
	if !rep2.eligible(kindCreate, now.Add(ttl/2)) {
		t.Error("probed-back replica should serve again")
	}
}

func TestFrontReadyzAndAdmin(t *testing.T) {
	tf := newFleet(t, 2, Config{LeaseTTL: time.Minute})

	get := func(path string) (int, []byte) {
		resp, err := http.Get(tf.frontTS.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, data
	}

	if st, _ := get("/healthz"); st != http.StatusOK {
		t.Fatalf("healthz: %d", st)
	}
	if st, _ := get("/readyz"); st != http.StatusOK {
		t.Fatalf("readyz with 2 ready replicas: %d", st)
	}

	// Admin: drain one, add one, remove one.
	var fz Fleetz
	st, _ := postVia(t, tf.frontTS.URL, "/admin/replicas", AdminReplicasRequest{Drain: []string{tf.workers[0].URL}}, &fz)
	if st != http.StatusOK {
		t.Fatalf("admin drain: status %d", st)
	}
	found := false
	for _, rs := range fz.Replicas {
		if rs.Name == tf.workers[0].URL {
			found = true
			if rs.State != "draining" {
				t.Errorf("drained replica state = %s", rs.State)
			}
		}
	}
	if !found {
		t.Fatalf("drained replica missing from fleetz: %+v", fz)
	}
	if st, _ := postVia(t, tf.frontTS.URL, "/admin/replicas", AdminReplicasRequest{Drain: []string{"http://nope"}}, nil); st != http.StatusNotFound {
		t.Errorf("draining unknown replica: status %d, want 404", st)
	}

	// Remove every replica: the front stays alive but not ready, and
	// forwards shed with a Retry-After.
	for _, ts := range tf.workers {
		tf.front.RemoveReplica(ts.URL)
	}
	if st, body := get("/readyz"); st != http.StatusServiceUnavailable {
		t.Errorf("readyz with no replicas: %d (%s)", st, body)
	}
	buf, _ := json.Marshal(server.LoadRequest{Configs: config.Figure2aConfigs()})
	resp, err := http.Post(tf.frontTS.URL+"/v1/load", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("load with no replicas: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("load with no replicas: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
}

// TestRunLoadSingleNode smoke-tests the load generator against one bare
// cprd: a seeded mixed run completes with zero errors and a coherent
// report, and the same seed reproduces the same canonical traces.
func TestRunLoadSingleNode(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()

	opts := LoadOptions{Target: ts.URL, Mix: "mixed", Requests: 40, Clients: 2, Sessions: 2, Seed: 11, Trace: true}
	report, traces, err := RunLoad(opts)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if report.Errors != 0 {
		t.Fatalf("single-node run had %d errors:\n%s", report.Errors, report)
	}
	if report.Requests != 40 {
		t.Errorf("requests = %d, want 40", report.Requests)
	}
	if report.All.Count != 40 || report.All.P50MS <= 0 {
		t.Errorf("aggregate stats incoherent: %+v", report.All)
	}
	if len(traces) != 2 {
		t.Fatalf("traces for %d clients, want 2", len(traces))
	}

	report2, traces2, err := RunLoad(opts)
	if err != nil {
		t.Fatalf("RunLoad (repeat): %v", err)
	}
	if report2.Errors != 0 {
		t.Fatalf("repeat run had %d errors", report2.Errors)
	}
	for c := range traces {
		if len(traces[c]) != len(traces2[c]) {
			t.Fatalf("client %d: %d ops vs %d ops across identical seeds", c, len(traces[c]), len(traces2[c]))
		}
		for i := range traces[c] {
			if traces[c][i] != traces2[c][i] {
				t.Errorf("client %d op %d differs across identical seeds:\n a: %s\n b: %s", c, i, traces[c][i], traces2[c][i])
			}
		}
	}

	if _, _, err := RunLoad(LoadOptions{Target: ts.URL, Mix: "bogus"}); err == nil {
		t.Error("unknown mix should error")
	}
}
