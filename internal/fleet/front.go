package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	cpr "repro"
)

// Config tunes the front tier; zero values select the documented
// defaults.
type Config struct {
	// Replicas are the initial worker base URLs (e.g. http://host:8080).
	Replicas []string
	// VNodes is the virtual-node count per replica on the hash ring
	// (default 64).
	VNodes int
	// ProbeInterval is the readiness-probe period (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round-trip (default ProbeInterval/2).
	ProbeTimeout time.Duration
	// LeaseTTL is the ownership lease granted by each passing probe
	// (default 3×ProbeInterval). A replica whose lease expires un-renewed
	// loses its ring ranges to the successor — the forced-takeover clock
	// for crashes, partitions, and drains.
	LeaseTTL time.Duration
	// RetriesPerReplica is how many extra attempts a transport-level
	// failure earns on the same replica before failing over to the ring
	// successor (default 1).
	RetriesPerReplica int
	// RetryBackoff is the base backoff between same-replica retries,
	// doubled per attempt and jittered ±20% deterministically by request
	// key (default 25ms).
	RetryBackoff time.Duration
	// HedgeAfter launches a hedged attempt on the next candidate when the
	// current one has not answered within this duration; the first
	// winning response is relayed and the loser is cancelled. 0 disables
	// hedging; the default is 1s.
	HedgeAfter time.Duration
	// SessionReplicas is how many ring candidates receive session-creating
	// requests (/v1/load, /v1/delta): the owner synchronously, the rest
	// replicated in the background so failover targets hold the session
	// warm (default 2; 1 disables replication).
	SessionReplicas int
	// ForwardTimeout bounds one forwarded attempt (default 0: inherit the
	// client request's deadline).
	ForwardTimeout time.Duration
	// MaxBodyBytes caps forwarded request bodies (default 64 MiB).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = defaultVNodes
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval / 2
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 3 * c.ProbeInterval
	}
	if c.RetriesPerReplica < 0 {
		c.RetriesPerReplica = 0
	} else if c.RetriesPerReplica == 0 {
		c.RetriesPerReplica = 1
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = time.Second
	} else if c.HedgeAfter < 0 {
		c.HedgeAfter = 0
	}
	if c.SessionReplicas <= 0 {
		c.SessionReplicas = 2
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// requestKind partitions the proxied API by placement semantics.
type requestKind int

const (
	// kindQuery addresses an existing session (verify/explain/repair);
	// draining replicas still serve these while their lease lasts.
	kindQuery requestKind = iota
	// kindCreate places a new session (load/delta); never routed to a
	// draining replica.
	kindCreate
)

// ReplicaHeader is the response header naming the replica that answered
// a forwarded request; load generators use it to measure per-replica
// skew, and the failover tests to assert where a retry landed.
const ReplicaHeader = "X-Cpr-Replica"

var errNoReplica = errors.New("fleet: no eligible replica")

// routingStats aggregates the front tier's forwarding counters.
type routingStats struct {
	forwards     atomic.Int64 // requests relayed to a replica response
	failovers    atomic.Int64 // responses served by a non-primary candidate
	hedges       atomic.Int64 // hedged attempts launched
	retries      atomic.Int64 // same-replica retry attempts
	noReplica    atomic.Int64 // requests shed: no eligible candidate
	replications atomic.Int64 // background session replications issued
	replFailures atomic.Int64 // background replications that failed
}

// Front is the fleet's stateless routing tier. It holds no session
// state: routing is a pure function of the request's content address and
// the (probed) ring state, so any front instance — or a restarted one —
// routes identically.
type Front struct {
	cfg Config

	client      *http.Client // forwards
	probeClient *http.Client // readiness probes

	mu       sync.RWMutex
	replicas map[string]*replica
	ring     *Ring

	stats routingStats
	mux   *http.ServeMux

	draining atomic.Bool

	startOnce sync.Once
	started   atomic.Bool
	stopOnce  sync.Once
	stop      chan struct{}
	probeDone chan struct{}

	// Background session replication: cancelled and awaited on Close.
	replCtx    context.Context
	replCancel context.CancelFunc
	replWG     sync.WaitGroup
}

// New builds a Front over the configured replicas. Call Start to begin
// health probing and Close to release it. Replicas start Ready with one
// LeaseTTL of optimistic lease, so routing works before the first probe
// round corrects the picture.
func New(cfg Config) *Front {
	cfg = cfg.withDefaults()
	f := &Front{
		cfg:         cfg,
		client:      &http.Client{},
		probeClient: &http.Client{Timeout: cfg.ProbeTimeout},
		replicas:    make(map[string]*replica),
		mux:         http.NewServeMux(),
		stop:        make(chan struct{}),
		probeDone:   make(chan struct{}),
	}
	f.replCtx, f.replCancel = context.WithCancel(context.Background())
	now := time.Now()
	for _, name := range cfg.Replicas {
		if name == "" || f.replicas[name] != nil {
			continue
		}
		f.replicas[name] = &replica{name: name, state: stateReady, leaseUntil: now.Add(cfg.LeaseTTL)}
	}
	f.rebuildRingLocked()

	for _, path := range []string{"/v1/load", "/v1/delta", "/v1/verify", "/v1/explain", "/v1/repair"} {
		f.mux.HandleFunc("POST "+path, f.handleProxy)
	}
	f.mux.HandleFunc("GET /healthz", f.handleHealthz)
	f.mux.HandleFunc("GET /readyz", f.handleReadyz)
	f.mux.HandleFunc("GET /fleetz", f.handleFleetz)
	f.mux.HandleFunc("POST /admin/replicas", f.handleAdminReplicas)
	return f
}

// Handler returns the front tier's HTTP handler.
func (f *Front) Handler() http.Handler { return f.mux }

// Start launches the background readiness-probe loop.
func (f *Front) Start() {
	f.startOnce.Do(func() {
		f.started.Store(true)
		go f.probeLoop()
	})
}

// Close stops probing, cancels in-flight background replications, and
// waits for both to wind down.
func (f *Front) Close() {
	f.stopOnce.Do(func() {
		close(f.stop)
	})
	if f.started.Load() {
		<-f.probeDone
	}
	f.replCancel()
	f.replWG.Wait()
	f.client.CloseIdleConnections()
	f.probeClient.CloseIdleConnections()
}

// BeginDrain flips the front's own /readyz to 503 (for stacked
// balancers); forwarding continues.
func (f *Front) BeginDrain() { f.draining.Store(true) }

// --- membership ---

// rebuildRingLocked recomputes the ring from the replica set; callers
// hold f.mu.
func (f *Front) rebuildRingLocked() {
	names := make([]string, 0, len(f.replicas))
	for name := range f.replicas {
		names = append(names, name)
	}
	sort.Strings(names)
	f.ring = NewRing(names, f.cfg.VNodes)
}

// AddReplica joins a worker to the ring (scale-up). Existing sessions
// whose keys now hash to it will 404 there once — clients re-load, and
// the content address guarantees the reloaded session answers
// identically.
func (f *Front) AddReplica(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if name == "" || f.replicas[name] != nil {
		return
	}
	f.replicas[name] = &replica{name: name, state: stateReady, leaseUntil: time.Now().Add(f.cfg.LeaseTTL)}
	f.rebuildRingLocked()
}

// DrainReplica begins graceful scale-down: the replica stops receiving
// new sessions immediately, keeps serving session queries while its
// lease lasts, and loses its ring ranges to the successor when the lease
// expires (probes no longer renew a draining replica's lease).
func (f *Front) DrainReplica(name string) bool {
	f.mu.RLock()
	rep := f.replicas[name]
	f.mu.RUnlock()
	if rep == nil {
		return false
	}
	rep.mu.Lock()
	rep.opDrain = true
	if rep.state != stateDown {
		rep.state = stateDraining
	}
	rep.mu.Unlock()
	return true
}

// RemoveReplica drops a worker from the ring entirely. Use after
// DrainReplica's lease has run out (or immediately for a dead replica).
func (f *Front) RemoveReplica(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.replicas[name] == nil {
		return false
	}
	delete(f.replicas, name)
	f.rebuildRingLocked()
	return true
}

// Replicas returns the current member names, sorted.
func (f *Front) Replicas() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.ring.Members()
}

// Owner returns the ring owner for a session key — exported so tests
// and operators can predict placement (routing is a pure function of
// key and ring state).
func (f *Front) Owner(key string) string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.ring.Owner(key)
}

// Candidates returns the failover order for a key (owner first).
func (f *Front) Candidates(key string) []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.ring.Candidates(key, 0)
}

// --- probing ---

func (f *Front) probeLoop() {
	defer close(f.probeDone)
	ticker := time.NewTicker(f.cfg.ProbeInterval)
	defer ticker.Stop()
	// One immediate round so a freshly started front converges without
	// waiting a full interval.
	f.ProbeNow()
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
			f.ProbeNow()
		}
	}
}

// ProbeNow runs one synchronous probe round over every replica,
// renewing leases of ready ones. Exposed for tests that want
// deterministic convergence instead of sleeping.
func (f *Front) ProbeNow() {
	f.mu.RLock()
	reps := make([]*replica, 0, len(f.replicas))
	for _, rep := range f.replicas {
		reps = append(reps, rep)
	}
	f.mu.RUnlock()
	var wg sync.WaitGroup
	for _, rep := range reps {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			ready, draining, err := probeReplica(f.probeClient, rep.name)
			rep.observeProbe(ready, draining, err, f.cfg.LeaseTTL, time.Now())
		}(rep)
	}
	wg.Wait()
}

// --- routing ---

// candidatesFor resolves the eligible replicas for a key in failover
// order: ring order filtered by state and lease.
func (f *Front) candidatesFor(key string, kind requestKind) []*replica {
	f.mu.RLock()
	order := f.ring.Candidates(key, 0)
	reps := make([]*replica, 0, len(order))
	for _, name := range order {
		if rep := f.replicas[name]; rep != nil {
			reps = append(reps, rep)
		}
	}
	f.mu.RUnlock()
	now := time.Now()
	out := reps[:0]
	for _, rep := range reps {
		if rep.eligible(kind, now) {
			out = append(out, rep)
		}
	}
	return out
}

// proxyResult is one forwarded response (or terminal failure).
type proxyResult struct {
	status  int
	header  http.Header
	body    []byte
	replica string
	err     error
}

// attemptOnce issues one forwarded request to a replica and reads the
// full response.
func (f *Front) attemptOnce(ctx context.Context, rep *replica, path string, body []byte) (*proxyResult, error) {
	if f.cfg.ForwardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.cfg.ForwardTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.name+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &proxyResult{status: resp.StatusCode, header: resp.Header, body: data, replica: rep.name}, nil
}

// tryReplica runs the bounded retry loop against one replica: transport
// failures earn RetriesPerReplica extra attempts with doubled,
// key-jittered backoff. The terminal transport failure marks the
// replica down (fail fast for subsequent requests) unless the attempt
// was cancelled because another candidate already won.
func (f *Front) tryReplica(ctx context.Context, rep *replica, path string, body []byte, key string) *proxyResult {
	var lastErr error
	for try := 0; try <= f.cfg.RetriesPerReplica; try++ {
		if try > 0 {
			f.stats.retries.Add(1)
			backoff := time.Duration(float64(f.cfg.RetryBackoff) * float64(int(1)<<(try-1)) * backoffJitter(key, try))
			select {
			case <-ctx.Done():
				return &proxyResult{replica: rep.name, err: ctx.Err()}
			case <-time.After(backoff):
			}
		}
		res, err := f.attemptOnce(ctx, rep, path, body)
		if err == nil {
			rep.forwards.Add(1)
			return res
		}
		lastErr = err
		if ctx.Err() != nil {
			// Cancelled or past deadline: not the replica's fault.
			return &proxyResult{replica: rep.name, err: ctx.Err()}
		}
	}
	rep.markDown(lastErr)
	return &proxyResult{replica: rep.name, err: lastErr}
}

// backoffJitter maps (key, attempt) to a deterministic factor in
// [0.8, 1.2]: the same request retries on the same schedule, different
// requests spread out.
func backoffJitter(key string, attempt int) float64 {
	h := hash64(fmt.Sprintf("%s#%d", key, attempt))
	return 0.8 + 0.4*float64(h%1000)/999
}

// retriableStatus reports response codes that mean "this replica cannot
// serve this right now, another might": a reverse proxy's bad gateway or
// a worker that began draining after the probe round.
func retriableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable
}

// forward routes one request: candidates in ring order, bounded retries
// per candidate, hedged failover to the next candidate when the current
// one is slow, immediate failover when it is dead. The first winning
// response is relayed; losers are cancelled.
func (f *Front) forward(ctx context.Context, key string, kind requestKind, path string, body []byte) *proxyResult {
	cands := f.candidatesFor(key, kind)
	if len(cands) == 0 {
		f.stats.noReplica.Add(1)
		return &proxyResult{err: errNoReplica}
	}

	// A 404 is authoritative only from the replica a (re-)load of this key
	// would land on: the first create-eligible candidate. A draining
	// primary legitimately lacks sessions created after its drain began —
	// its 404 means "ask my successor", not "re-load".
	auth404 := cands[0].name
	now := time.Now()
	for _, rep := range cands {
		if rep.eligible(kindCreate, now) {
			auth404 = rep.name
			break
		}
	}

	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan *proxyResult, len(cands))
	next, inFlight := 0, 0
	launch := func() {
		rep := cands[next]
		next++
		inFlight++
		go func() {
			results <- f.tryReplica(actx, rep, path, body, key)
		}()
	}
	launch()

	var timer *time.Timer
	var hedgeC <-chan time.Time
	if f.cfg.HedgeAfter > 0 {
		timer = time.NewTimer(f.cfg.HedgeAfter)
		defer timer.Stop()
		hedgeC = timer.C
	}

	// fallback holds the best non-winning HTTP response (a successor's
	// 404, a drain 503): relayed only if nothing better arrives.
	var fallback *proxyResult
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return &proxyResult{err: ctx.Err()}
		case <-hedgeC:
			hedgeC = nil
			if next < len(cands) {
				f.stats.hedges.Add(1)
				launch()
				timer.Reset(f.cfg.HedgeAfter)
				hedgeC = timer.C
			}
		case res := <-results:
			inFlight--
			won := res.err == nil && !retriableStatus(res.status) &&
				// From anyone else a 404 is expected noise (a hedged
				// successor, a drained primary) and the next candidate may
				// still hold the session.
				!(res.status == http.StatusNotFound && res.replica != auth404)
			if won {
				f.stats.forwards.Add(1)
				if res.replica != cands[0].name {
					f.stats.failovers.Add(1)
				}
				return res
			}
			if res.err == nil && fallback == nil {
				fallback = res
			}
			if res.err != nil {
				lastErr = res.err
			}
			if next < len(cands) {
				launch()
				continue
			}
			if inFlight == 0 {
				if fallback != nil {
					f.stats.forwards.Add(1)
					if fallback.replica != cands[0].name {
						f.stats.failovers.Add(1)
					}
					return fallback
				}
				return &proxyResult{err: lastErr}
			}
		}
	}
}

// replicateCreate forwards a session-creating request to the next ring
// candidates in the background, so the owner's failover targets hold the
// session warm. Best-effort: failures only count in /fleetz.
func (f *Front) replicateCreate(key, path string, body []byte) {
	if f.cfg.SessionReplicas <= 1 {
		return
	}
	cands := f.candidatesFor(key, kindCreate)
	if len(cands) <= 1 {
		return
	}
	n := f.cfg.SessionReplicas - 1
	if n > len(cands)-1 {
		n = len(cands) - 1
	}
	for _, rep := range cands[1 : 1+n] {
		f.replWG.Add(1)
		f.stats.replications.Add(1)
		go func(rep *replica) {
			defer f.replWG.Done()
			res := f.tryReplica(f.replCtx, rep, path, body, key)
			if res.err != nil || res.status != http.StatusOK {
				f.stats.replFailures.Add(1)
			}
		}(rep)
	}
}

// --- HTTP handlers ---

type frontError struct {
	Error string `json:"error"`
}

func writeFrontError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(frontError{Error: fmt.Sprintf(format, args...)})
}

func (f *Front) handleProxy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, f.cfg.MaxBodyBytes))
	if err != nil {
		writeFrontError(w, http.StatusRequestEntityTooLarge, "request body: %v", err)
		return
	}
	// Peek just enough to route; full validation is the worker's job.
	var peek struct {
		Session string            `json:"session"`
		Configs map[string]string `json:"configs"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		writeFrontError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	kind := kindQuery
	key := peek.Session
	switch r.URL.Path {
	case "/v1/load":
		kind = kindCreate
		if len(peek.Configs) == 0 {
			writeFrontError(w, http.StatusBadRequest, "no configs given")
			return
		}
		// The routing key IS the session key the worker will answer with:
		// both are cpr.ContentKey of the config set.
		key = cpr.ContentKey(peek.Configs)
	case "/v1/delta":
		// Deltas are routed by the base session (only its holder can
		// derive incrementally) but place a new session, so they follow
		// create rules and skip draining replicas.
		kind = kindCreate
		fallthrough
	default:
		if key == "" {
			writeFrontError(w, http.StatusBadRequest, "missing session")
			return
		}
	}

	res := f.forward(r.Context(), key, kind, r.URL.Path, body)
	if res.err != nil {
		switch {
		case errors.Is(res.err, errNoReplica):
			w.Header().Set("Retry-After", "1")
			writeFrontError(w, http.StatusServiceUnavailable, "no eligible replica for key %.12s…", key)
		case errors.Is(res.err, context.DeadlineExceeded):
			writeFrontError(w, http.StatusGatewayTimeout, "fleet: %v", res.err)
		case errors.Is(res.err, context.Canceled):
			// Client went away; status is moot but pick one deliberately.
			writeFrontError(w, http.StatusGatewayTimeout, "fleet: %v", res.err)
		default:
			writeFrontError(w, http.StatusBadGateway, "every candidate failed: %v", res.err)
		}
		return
	}
	if kind == kindCreate && res.status == http.StatusOK {
		f.replicateCreate(key, r.URL.Path, body)
	}
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := res.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set(ReplicaHeader, res.replica)
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

func (f *Front) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`{"ok":true}` + "\n"))
}

func (f *Front) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	type readyz struct {
		Ready    bool `json:"ready"`
		Draining bool `json:"draining"`
		Eligible int  `json:"eligible_replicas"`
	}
	f.mu.RLock()
	reps := make([]*replica, 0, len(f.replicas))
	for _, rep := range f.replicas {
		reps = append(reps, rep)
	}
	f.mu.RUnlock()
	now := time.Now()
	eligible := 0
	for _, rep := range reps {
		if rep.eligible(kindQuery, now) {
			eligible++
		}
	}
	rz := readyz{Ready: !f.draining.Load() && eligible > 0, Draining: f.draining.Load(), Eligible: eligible}
	w.Header().Set("Content-Type", "application/json")
	if !rz.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(rz)
}

// ReplicaStatus is one replica's row in the /fleetz payload.
type ReplicaStatus struct {
	Name        string  `json:"name"`
	State       string  `json:"state"`
	LeaseValid  bool    `json:"lease_valid"`
	LeaseLeftMS float64 `json:"lease_left_ms"`
	Forwards    int64   `json:"forwards"`
	Failures    int64   `json:"failures"`
	LastError   string  `json:"last_error,omitempty"`
}

// Fleetz is the GET /fleetz response: ring membership, per-replica
// state, and routing counters.
type Fleetz struct {
	Replicas []ReplicaStatus `json:"replicas"`
	VNodes   int             `json:"vnodes"`
	Routing  struct {
		Forwards            int64 `json:"forwards"`
		Failovers           int64 `json:"failovers"`
		Hedges              int64 `json:"hedges"`
		Retries             int64 `json:"retries"`
		NoReplica           int64 `json:"no_replica"`
		Replications        int64 `json:"replications"`
		ReplicationFailures int64 `json:"replication_failures"`
	} `json:"routing"`
}

// Status snapshots the fleet for /fleetz (and tests).
func (f *Front) Status() Fleetz {
	f.mu.RLock()
	names := f.ring.Members()
	reps := make([]*replica, 0, len(names))
	for _, name := range names {
		if rep := f.replicas[name]; rep != nil {
			reps = append(reps, rep)
		}
	}
	f.mu.RUnlock()
	now := time.Now()
	var out Fleetz
	out.VNodes = f.cfg.VNodes
	for _, rep := range reps {
		out.Replicas = append(out.Replicas, rep.status(now))
	}
	out.Routing.Forwards = f.stats.forwards.Load()
	out.Routing.Failovers = f.stats.failovers.Load()
	out.Routing.Hedges = f.stats.hedges.Load()
	out.Routing.Retries = f.stats.retries.Load()
	out.Routing.NoReplica = f.stats.noReplica.Load()
	out.Routing.Replications = f.stats.replications.Load()
	out.Routing.ReplicationFailures = f.stats.replFailures.Load()
	return out
}

func (f *Front) handleFleetz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(f.Status())
}

// AdminReplicasRequest is the POST /admin/replicas body: add joins
// workers to the ring, drain begins graceful scale-down, remove drops
// them outright.
type AdminReplicasRequest struct {
	Add    []string `json:"add,omitempty"`
	Drain  []string `json:"drain,omitempty"`
	Remove []string `json:"remove,omitempty"`
}

func (f *Front) handleAdminReplicas(w http.ResponseWriter, r *http.Request) {
	var req AdminReplicasRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeFrontError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	for _, name := range req.Add {
		f.AddReplica(name)
	}
	for _, name := range req.Drain {
		if !f.DrainReplica(name) {
			writeFrontError(w, http.StatusNotFound, "unknown replica %q", name)
			return
		}
	}
	for _, name := range req.Remove {
		if !f.RemoveReplica(name) {
			writeFrontError(w, http.StatusNotFound, "unknown replica %q", name)
			return
		}
	}
	f.handleFleetz(w, r)
}
