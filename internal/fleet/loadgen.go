package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	cpr "repro"
	"repro/internal/config"
	"repro/internal/server"
)

// figure2aPolicies is the paper's Figure 2a policy specification — the
// workload every load-generated session is verified and repaired
// against.
const figure2aPolicies = "always-blocked S U\nalways-waypoint S T\nreachable S T 2\nprimary-path R T A,B,C\n"

// Mixes name the request blends the load generator replays. Weights are
// (verify, repair, delta) out of the non-load remainder; sessions load
// lazily on first touch, and churn deltas keep forking warm solve
// caches while fresh verify/repair traffic hits them.
var Mixes = map[string][3]int{
	"verify": {8, 1, 1},
	"repair": {2, 7, 1},
	"churn":  {2, 3, 5},
	"mixed":  {4, 3, 3},
}

// MixNames lists the available mixes, sorted.
func MixNames() []string {
	names := make([]string, 0, len(Mixes))
	for name := range Mixes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LoadOptions configures one deterministic load-generation run. The
// request *schedule* (which client issues which op against which config
// set, and every config byte) is a pure function of Seed and the shape
// parameters; only timing varies run to run.
type LoadOptions struct {
	// Target is the base URL of a cprfront (or a single cprd — the SLO
	// baseline) instance.
	Target string
	// Mix is one of MixNames() (default "mixed").
	Mix string
	// Requests is the total operation count across clients (default 200).
	Requests int
	// Clients is the number of concurrent virtual clients (default 4).
	Clients int
	// Sessions is how many distinct config sets each client works
	// against (default 2). Clients own disjoint config sets, so traces
	// are comparable per client even under concurrency.
	Sessions int
	// Seed drives the schedule and all config variants.
	Seed int64
	// Chaos annotates the report: the caller armed failpoints (e.g.
	// CPR_FAILPOINTS=server/repair-abort=3*error) for this run.
	Chaos bool
	// Trace collects a canonical result string per op (per client, in
	// issue order) for differential oracles.
	Trace bool
	// HTTPClient overrides the transport (tests share one client).
	HTTPClient *http.Client
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Mix == "" {
		o.Mix = "mixed"
	}
	if o.Requests <= 0 {
		o.Requests = 200
	}
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.Sessions <= 0 {
		o.Sessions = 2
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	return o
}

type opKind int

const (
	opVerify opKind = iota
	opRepair
	opDelta
)

func (k opKind) String() string {
	switch k {
	case opVerify:
		return "verify"
	case opRepair:
		return "repair"
	default:
		return "delta"
	}
}

// VariantConfigs returns the id-th deterministic figure-2a variant: the
// base configs with device A's link costs permuted. 81 distinct
// variants (ids beyond that wrap), each a distinct content address with
// the same topology and policy surface.
func VariantConfigs(id int) (map[string]string, error) {
	cfgs := config.Figure2aConfigs()
	c, err := config.Parse("A", cfgs["A"])
	if err != nil {
		return nil, err
	}
	if _, err := c.SetInterfaceCost("Ethernet0/1", 1+id%9); err != nil {
		return nil, err
	}
	if _, err := c.SetInterfaceCost("Ethernet0/2", 1+(id/9)%9); err != nil {
		return nil, err
	}
	cfgs["A"] = c.Print()
	return cfgs, nil
}

// churnDelta returns the config overlay for a session's step-th churn
// delta: device C's first link cost cycling through 1..9. Deterministic
// in (texts, step).
func churnDelta(texts map[string]string, step int) (map[string]string, error) {
	c, err := config.Parse("C", texts["C"])
	if err != nil {
		return nil, err
	}
	if _, err := c.SetInterfaceCost("Ethernet0/1", 1+step%9); err != nil {
		return nil, err
	}
	return map[string]string{"C": c.Print()}, nil
}

// sessionState is one virtual client's view of one config set.
type sessionState struct {
	texts     map[string]string
	key       string // session key once loaded
	churnStep int
}

// sample is one completed operation.
type sample struct {
	kind    opKind
	dur     time.Duration
	replica string
	shed    bool // saw at least one 429 along the way
	reroute bool // saw at least one 404 and re-loaded
	err     error
}

// loadClient is one virtual client: its own rng-derived schedule over
// its own config sets, issued sequentially.
type loadClient struct {
	id       int
	opts     LoadOptions
	http     *http.Client
	sessions []*sessionState
	samples  []sample
	trace    []string
}

// RunLoad replays a deterministic request mix against the target and
// returns the SLO report plus (when opts.Trace) each client's canonical
// per-op results.
func RunLoad(opts LoadOptions) (*Report, [][]string, error) {
	opts = opts.withDefaults()
	weights, ok := Mixes[opts.Mix]
	if !ok {
		return nil, nil, fmt.Errorf("fleet: unknown mix %q (want one of %s)", opts.Mix, strings.Join(MixNames(), ", "))
	}

	clients := make([]*loadClient, opts.Clients)
	for c := range clients {
		lc := &loadClient{id: c, opts: opts, http: opts.HTTPClient}
		for s := 0; s < opts.Sessions; s++ {
			texts, err := VariantConfigs(c*opts.Sessions + s)
			if err != nil {
				return nil, nil, fmt.Errorf("fleet: building config variant: %w", err)
			}
			lc.sessions = append(lc.sessions, &sessionState{texts: texts})
		}
		clients[c] = lc
	}

	// Per-client deterministic schedules: op kinds weighted by the mix,
	// session indices uniform. Requests are split evenly with the
	// remainder on the first clients.
	perClient := opts.Requests / opts.Clients
	extra := opts.Requests % opts.Clients

	start := time.Now()
	var wg sync.WaitGroup
	for _, lc := range clients {
		n := perClient
		if lc.id < extra {
			n++
		}
		wg.Add(1)
		go func(lc *loadClient, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed*1_000_003 + int64(lc.id)))
			for i := 0; i < n; i++ {
				kind := pickOp(rng, weights)
				sess := lc.sessions[rng.Intn(len(lc.sessions))]
				lc.run(kind, sess)
			}
		}(lc, n)
	}
	wg.Wait()
	wall := time.Since(start)

	report := buildReport(opts, clients, wall)
	var traces [][]string
	if opts.Trace {
		traces = make([][]string, len(clients))
		for i, lc := range clients {
			traces[i] = lc.trace
		}
	}
	return report, traces, nil
}

func pickOp(rng *rand.Rand, w [3]int) opKind {
	total := w[0] + w[1] + w[2]
	n := rng.Intn(total)
	switch {
	case n < w[0]:
		return opVerify
	case n < w[0]+w[1]:
		return opRepair
	default:
		return opDelta
	}
}

// --- client operations ---

// maxShedRetries bounds how often a client re-submits a shed (429)
// request before counting it as a failure.
const maxShedRetries = 50

// post issues one JSON POST and decodes the body, returning the status
// and serving replica.
func (lc *loadClient) post(path string, body any, out any) (int, string, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, "", err
	}
	resp, err := lc.http.Post(lc.opts.Target+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, "", fmt.Errorf("decode %s: %w", path, err)
		}
	}
	return resp.StatusCode, resp.Header.Get(ReplicaHeader), nil
}

// postRetry is post with shed handling: 429s (worker queue full) and
// 503s (front momentarily sees no eligible replica, e.g. mid-rebalance)
// are retried after a short pause — the server's jittered Retry-After is
// for production pacing; load runs compress it.
func (lc *loadClient) postRetry(path string, body any, out any, s *sample) (int, string, error) {
	for try := 0; ; try++ {
		st, replica, err := lc.post(path, body, out)
		if err != nil {
			return st, replica, err
		}
		if st != http.StatusTooManyRequests && st != http.StatusServiceUnavailable {
			return st, replica, nil
		}
		s.shed = true
		if try >= maxShedRetries {
			return st, replica, fmt.Errorf("%s: still shed after %d retries", path, try)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ensureLoaded loads the session if this client has not yet (or a
// topology change 404ed it away).
func (lc *loadClient) ensureLoaded(sess *sessionState, s *sample) error {
	var lr server.LoadResponse
	st, _, err := lc.postRetry("/v1/load", server.LoadRequest{Configs: sess.texts}, &lr, s)
	if err != nil {
		return err
	}
	if st != http.StatusOK {
		return fmt.Errorf("load: status %d", st)
	}
	sess.key = lr.Session
	return nil
}

// run executes one scheduled op against one session, recording a sample
// (and, when tracing, the canonical result).
func (lc *loadClient) run(kind opKind, sess *sessionState) {
	t0 := time.Now()
	s := sample{kind: kind}
	canon, err := lc.execute(kind, sess, &s)
	s.dur = time.Since(t0)
	s.err = err
	lc.samples = append(lc.samples, s)
	if lc.opts.Trace {
		if err != nil {
			canon = fmt.Sprintf("%s error=%v", kind, err)
		}
		lc.trace = append(lc.trace, canon)
	}
}

func (lc *loadClient) execute(kind opKind, sess *sessionState, s *sample) (string, error) {
	if sess.key == "" {
		if err := lc.ensureLoaded(sess, s); err != nil {
			return "", err
		}
	}
	switch kind {
	case opVerify:
		return lc.verify(sess, s)
	case opRepair:
		return lc.repair(sess, s)
	default:
		return lc.delta(sess, s)
	}
}

// maxRerouteRetries bounds how many times a client re-loads a 404ed
// session before surfacing the 404. One retry suffices in steady state;
// the bound absorbs back-to-back membership changes that can move the
// key again between the re-load and the retry.
const maxRerouteRetries = 5

// withReload runs op, and on a 404 (the session's ring owner changed, or
// the holder restarted) re-loads the session and retries. That is the
// fleet client contract: sessions are cache entries, not durable state,
// and the content address makes the reloaded session answer
// byte-identically.
func (lc *loadClient) withReload(sess *sessionState, s *sample, op func() (int, string, error)) (int, string, error) {
	for try := 0; ; try++ {
		st, replica, err := op()
		if err != nil || st != http.StatusNotFound || try >= maxRerouteRetries {
			return st, replica, err
		}
		s.reroute = true
		if err := lc.ensureLoaded(sess, s); err != nil {
			return 0, "", err
		}
	}
}

func (lc *loadClient) verify(sess *sessionState, s *sample) (string, error) {
	var vr server.VerifyResponse
	st, replica, err := lc.withReload(sess, s, func() (int, string, error) {
		return lc.postRetry("/v1/verify", server.VerifyRequest{Session: sess.key, Policies: figure2aPolicies}, &vr, s)
	})
	if err != nil {
		return "", err
	}
	if st != http.StatusOK {
		return "", fmt.Errorf("verify: status %d", st)
	}
	s.replica = replica
	return fmt.Sprintf("verify key=%s total=%d violated=%v", sess.key, vr.Total, vr.Violated), nil
}

func (lc *loadClient) repair(sess *sessionState, s *sample) (string, error) {
	var rr server.RepairResponse
	st, replica, err := lc.withReload(sess, s, func() (int, string, error) {
		return lc.postRetry("/v1/repair", server.RepairRequest{Session: sess.key, Policies: figure2aPolicies}, &rr, s)
	})
	if err != nil {
		return "", err
	}
	if st != http.StatusOK {
		return "", fmt.Errorf("repair: status %d", st)
	}
	s.replica = replica
	// Canonical form excludes timing and cache-warmth markers (Reused,
	// DurationMS): those legitimately differ between a fleet replica and
	// the single-node baseline; everything semantic may not.
	return fmt.Sprintf("repair key=%s solved=%v degraded=%d failed=%d changes=%d lines=%d conflicts=%d plan=%q patched=%s",
		sess.key, rr.Solved, rr.Degraded, rr.Failed, rr.Changes, rr.Lines, rr.Conflicts, rr.Plan, cpr.ContentKey(rr.PatchedConfigs)), nil
}

func (lc *loadClient) delta(sess *sessionState, s *sample) (string, error) {
	changed, err := churnDelta(sess.texts, sess.churnStep)
	if err != nil {
		return "", err
	}
	sess.churnStep++
	var dr server.DeltaResponse
	st, replica, err := lc.withReload(sess, s, func() (int, string, error) {
		return lc.postRetry("/v1/delta", server.DeltaRequest{Session: sess.key, Configs: changed}, &dr, s)
	})
	if err != nil {
		return "", err
	}
	if st != http.StatusOK {
		return "", fmt.Errorf("delta: status %d", st)
	}
	s.replica = replica
	// The client's local view follows the delta: subsequent ops address
	// the derived session, and a later 404 re-loads the full overlaid
	// set.
	for k, v := range changed {
		if v == "" {
			delete(sess.texts, k)
		} else {
			sess.texts[k] = v
		}
	}
	sess.key = dr.Session
	return fmt.Sprintf("delta key=%s devices=%d subnets=%d links=%d tcs=%d",
		dr.Session, dr.Devices, dr.Subnets, dr.Links, dr.TrafficClasses), nil
}
