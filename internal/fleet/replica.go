package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// replicaState is a worker replica's routing eligibility as seen by the
// front tier.
type replicaState int32

const (
	// stateReady: readiness probes pass; eligible for all requests.
	stateReady replicaState = iota
	// stateDraining: alive but /readyz answers 503 (SIGTERM drain begun,
	// or an operator marked it for scale-down). It keeps serving
	// session-scoped queries until its lease expires — it holds warm
	// sessions and in-flight work — but receives no new sessions.
	stateDraining
	// stateDown: probes or forwards fail at the transport level; excluded
	// from routing entirely until a probe succeeds again.
	stateDown
)

func (s replicaState) String() string {
	switch s {
	case stateReady:
		return "ready"
	case stateDraining:
		return "draining"
	default:
		return "down"
	}
}

// replica is one cprd worker as tracked by the front tier: its base URL,
// probed state, and the time-boxed lease backing its ring ownership.
type replica struct {
	name string // base URL, e.g. http://10.0.0.7:8080

	mu         sync.Mutex
	state      replicaState
	leaseUntil time.Time
	lastErr    string
	// opDrain pins the replica in draining from the operator side
	// (scale-down): probes may still pass, but the lease must run out.
	opDrain bool

	// Routing counters (atomic: bumped on the forward path).
	forwards atomic.Int64
	failures atomic.Int64
}

// eligible reports whether the replica may receive a request of the
// given kind at time now. Ownership is lease-backed: once the lease
// expires un-renewed — the replica is down, draining, or partitioned —
// the ring successor takes over even if the replica later answers, which
// is what guarantees progress across scale-down and crashes.
func (rep *replica) eligible(kind requestKind, now time.Time) bool {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.state == stateDown || now.After(rep.leaseUntil) {
		return false
	}
	// Draining replicas finish what they hold but take no new sessions.
	if rep.state == stateDraining && kind == kindCreate {
		return false
	}
	return true
}

// observeProbe folds one readiness-probe result into the replica state.
// Only a passing probe renews the lease; draining and down replicas let
// it run out, which is the forced-takeover clock.
func (rep *replica) observeProbe(ready bool, draining bool, err error, leaseTTL time.Duration, now time.Time) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	switch {
	case err != nil:
		rep.state = stateDown
		rep.lastErr = err.Error()
	case draining || !ready || rep.opDrain:
		// An operator-initiated drain (markDraining) and a replica-side
		// drain (readyz 503) look the same: stop renewing.
		if rep.state != stateDraining {
			rep.state = stateDraining
			rep.lastErr = ""
		}
	default:
		rep.state = stateReady
		rep.leaseUntil = now.Add(leaseTTL)
		rep.lastErr = ""
	}
}

// markDown records a transport-level forward failure: fail fast instead
// of waiting for the next probe. A later passing probe resurrects the
// replica.
func (rep *replica) markDown(err error) {
	rep.failures.Add(1)
	rep.mu.Lock()
	rep.state = stateDown
	rep.lastErr = err.Error()
	rep.mu.Unlock()
}

// status snapshots the replica for /fleetz.
func (rep *replica) status(now time.Time) ReplicaStatus {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	leaseMS := rep.leaseUntil.Sub(now).Seconds() * 1000
	if leaseMS < 0 {
		leaseMS = 0
	}
	return ReplicaStatus{
		Name:        rep.name,
		State:       rep.state.String(),
		LeaseValid:  !now.After(rep.leaseUntil),
		LeaseLeftMS: leaseMS,
		Forwards:    rep.forwards.Load(),
		Failures:    rep.failures.Load(),
		LastError:   rep.lastErr,
	}
}

// probe issues one readiness probe against the replica. The tri-state
// result mirrors cprd's /readyz: (ready), (alive but draining), or an
// error for anything transport-level or unexpected.
func probeReplica(client *http.Client, name string) (ready, draining bool, err error) {
	resp, err := client.Get(name + "/readyz")
	if err != nil {
		return false, false, err
	}
	defer resp.Body.Close()
	var rz struct {
		Ready    bool `json:"ready"`
		Draining bool `json:"draining"`
	}
	// A 503 with a draining body is a healthy drain; anything else
	// non-200 is treated as down.
	if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
		return false, false, fmt.Errorf("readyz: bad body: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return rz.Ready, false, nil
	case http.StatusServiceUnavailable:
		if rz.Draining {
			return false, true, nil
		}
		return false, false, fmt.Errorf("readyz: not ready")
	default:
		return false, false, fmt.Errorf("readyz: status %d", resp.StatusCode)
	}
}
