package fleet

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// OpStats summarizes one operation type's latency and error profile.
type OpStats struct {
	Op     string  `json:"op"`
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	Sheds  int     `json:"sheds"` // ops that saw >=1 429 before completing
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// Report is the SLO summary of one RunLoad invocation.
type Report struct {
	Target   string `json:"target"`
	Mix      string `json:"mix"`
	Seed     int64  `json:"seed"`
	Clients  int    `json:"clients"`
	Sessions int    `json:"sessions_per_client"`
	Chaos    bool   `json:"chaos"`

	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	Sheds      int     `json:"sheds"`
	Reroutes   int     `json:"reroutes"` // 404 → session re-load retries
	ErrorRate  float64 `json:"error_rate"`
	ShedRate   float64 `json:"shed_rate"`
	WallMS     float64 `json:"wall_ms"`
	Throughput float64 `json:"requests_per_sec"`

	Ops []OpStats `json:"ops"`
	// All aggregates every op type into one latency profile.
	All OpStats `json:"all"`

	// PerReplica counts completed ops by serving replica (from the
	// X-Cpr-Replica header); SkewMaxOverMean is the load-balance figure:
	// 1.0 is perfect, and the e2e harness alerts above ~2.
	PerReplica      map[string]int `json:"per_replica,omitempty"`
	SkewMaxOverMean float64        `json:"skew_max_over_mean,omitempty"`
}

func buildReport(opts LoadOptions, clients []*loadClient, wall time.Duration) *Report {
	r := &Report{
		Target:     opts.Target,
		Mix:        opts.Mix,
		Seed:       opts.Seed,
		Clients:    opts.Clients,
		Sessions:   opts.Sessions,
		Chaos:      opts.Chaos,
		WallMS:     float64(wall.Milliseconds()),
		PerReplica: map[string]int{},
	}

	byOp := map[opKind][]sample{}
	var all []sample
	for _, lc := range clients {
		for _, s := range lc.samples {
			byOp[s.kind] = append(byOp[s.kind], s)
			all = append(all, s)
			r.Requests++
			if s.err != nil {
				r.Errors++
			}
			if s.shed {
				r.Sheds++
			}
			if s.reroute {
				r.Reroutes++
			}
			if s.replica != "" {
				r.PerReplica[s.replica]++
			}
		}
	}
	for _, kind := range []opKind{opVerify, opRepair, opDelta} {
		if ss := byOp[kind]; len(ss) > 0 {
			r.Ops = append(r.Ops, opStats(kind.String(), ss))
		}
	}
	r.All = opStats("all", all)
	if r.Requests > 0 {
		r.ErrorRate = float64(r.Errors) / float64(r.Requests)
		r.ShedRate = float64(r.Sheds) / float64(r.Requests)
	}
	if wall > 0 {
		r.Throughput = float64(r.Requests) / wall.Seconds()
	}
	if len(r.PerReplica) > 0 {
		total, max := 0, 0
		for _, c := range r.PerReplica {
			total += c
			if c > max {
				max = c
			}
		}
		mean := float64(total) / float64(len(r.PerReplica))
		if mean > 0 {
			r.SkewMaxOverMean = float64(max) / mean
		}
	}
	return r
}

func opStats(name string, ss []sample) OpStats {
	st := OpStats{Op: name, Count: len(ss)}
	durs := make([]float64, 0, len(ss))
	var sum float64
	for _, s := range ss {
		if s.err != nil {
			st.Errors++
		}
		if s.shed {
			st.Sheds++
		}
		ms := float64(s.dur) / float64(time.Millisecond)
		durs = append(durs, ms)
		sum += ms
	}
	sort.Float64s(durs)
	st.P50MS = percentile(durs, 0.50)
	st.P95MS = percentile(durs, 0.95)
	st.P99MS = percentile(durs, 0.99)
	if n := len(durs); n > 0 {
		st.MaxMS = durs[n-1]
		st.MeanMS = sum / float64(n)
	}
	return st
}

// percentile returns the nearest-rank percentile of a sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted)) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

// String renders the report as the human-readable SLO summary cprload
// prints (and CI archives).
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cprload report: target=%s mix=%s seed=%d clients=%d sessions/client=%d chaos=%v\n",
		r.Target, r.Mix, r.Seed, r.Clients, r.Sessions, r.Chaos)
	fmt.Fprintf(&b, "  requests=%d errors=%d (%.2f%%) sheds=%d (%.2f%%) reroutes=%d wall=%.0fms rate=%.1f req/s\n",
		r.Requests, r.Errors, 100*r.ErrorRate, r.Sheds, 100*r.ShedRate, r.Reroutes, r.WallMS, r.Throughput)
	rows := append([]OpStats{}, r.Ops...)
	rows = append(rows, r.All)
	for _, op := range rows {
		fmt.Fprintf(&b, "  %-7s n=%-5d err=%-3d shed=%-3d p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms mean=%.1fms\n",
			op.Op, op.Count, op.Errors, op.Sheds, op.P50MS, op.P95MS, op.P99MS, op.MaxMS, op.MeanMS)
	}
	if len(r.PerReplica) > 0 {
		names := make([]string, 0, len(r.PerReplica))
		for n := range r.PerReplica {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "  per-replica skew(max/mean)=%.2f:", r.SkewMaxOverMean)
		for _, n := range names {
			fmt.Fprintf(&b, " %s=%d", n, r.PerReplica[n])
		}
		b.WriteString("\n")
	}
	return b.String()
}
