package fleet

import (
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/server"
)

// TestFleetE2ELoadSLO is the CI fleet-e2e gate: three cprd replicas
// behind one front, a seeded mixed load with an SLO assertion against a
// single-node baseline at equal per-replica load, then a chaos phase
// with mid-repair replica crashes that must stay invisible in the
// results. When $FLEET_SLO_REPORT names a file, the reports are written
// there for CI to archive.
func TestFleetE2ELoadSLO(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet e2e is slow in -short mode")
	}

	// Baseline: one bare cprd at the per-replica share of the fleet load
	// (a third of the requests, a third of the clients).
	single := httptest.NewServer(server.New(server.Config{}).Handler())
	defer single.Close()
	baseline, _, err := RunLoad(LoadOptions{
		Target: single.URL, Mix: "mixed", Requests: 60, Clients: 2, Sessions: 2, Seed: 42,
	})
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if baseline.Errors != 0 {
		t.Fatalf("baseline run had %d errors:\n%s", baseline.Errors, baseline)
	}

	tf := newFleet(t, 3, Config{ProbeInterval: 200 * time.Millisecond, ProbeTimeout: 2 * time.Second})
	tf.front.Start()

	// Phase 1, no chaos: triple the total load over triple the capacity.
	report, _, err := RunLoad(LoadOptions{
		Target: tf.frontTS.URL, Mix: "mixed", Requests: 180, Clients: 6, Sessions: 2, Seed: 42,
	})
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if report.Errors != 0 {
		t.Fatalf("no-chaos fleet run had %d errors:\n%s", report.Errors, report)
	}
	if report.Sheds != 0 {
		t.Fatalf("no-chaos fleet run shed %d requests, want 0 (shed rate must be 0%%):\n%s", report.Sheds, report)
	}
	// The SLO: fleet p99 within 2× the single-node p99 at equal
	// per-replica load, plus a small constant grace so a hiccup in a
	// millisecond-scale baseline cannot flake the gate.
	slo := 2*baseline.All.P99MS + 100
	if report.All.P99MS > slo {
		t.Errorf("fleet p99 %.1fms exceeds SLO %.1fms (single-node p99 %.1fms)", report.All.P99MS, slo, baseline.All.P99MS)
	}

	// Phase 2, chaos: three mid-repair connection aborts (crashed-worker
	// behavior). Retries and failover must keep every request whole.
	if err := faultinject.Set(faultinject.ServerRepairAbort, "3*error"); err != nil {
		t.Fatalf("arming failpoint: %v", err)
	}
	defer faultinject.Reset()
	chaosReport, _, err := RunLoad(LoadOptions{
		Target: tf.frontTS.URL, Mix: "repair", Requests: 90, Clients: 3, Sessions: 2, Seed: 43, Chaos: true,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if chaosReport.Errors != 0 {
		t.Fatalf("chaos fleet run had %d errors, failover must mask worker crashes:\n%s", chaosReport.Errors, chaosReport)
	}
	status := tf.front.Status()
	if status.Routing.Retries == 0 && status.Routing.Failovers == 0 {
		t.Error("chaos run triggered neither retries nor failovers; failpoint did not bite")
	}

	t.Logf("baseline p99 %.1fms, fleet p99 %.1fms (SLO %.1fms), skew %.2f",
		baseline.All.P99MS, report.All.P99MS, slo, report.SkewMaxOverMean)

	if path := os.Getenv("FLEET_SLO_REPORT"); path != "" {
		var b strings.Builder
		fmt.Fprintf(&b, "=== single-node baseline (per-replica share) ===\n%s\n", baseline)
		fmt.Fprintf(&b, "=== fleet, no chaos ===\n%s\nSLO: p99 %.1fms <= %.1fms (2x single-node p99 + 100ms)\n\n", report, report.All.P99MS, slo)
		fmt.Fprintf(&b, "=== fleet, chaos (3x server/repair-abort) ===\n%s\n", chaosReport)
		fmt.Fprintf(&b, "routing: forwards=%d failovers=%d hedges=%d retries=%d no_replica=%d replications=%d\n",
			status.Routing.Forwards, status.Routing.Failovers, status.Routing.Hedges,
			status.Routing.Retries, status.Routing.NoReplica, status.Routing.Replications)
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatalf("writing SLO report to %s: %v", path, err)
		}
		t.Logf("SLO report written to %s", path)
	}
}
