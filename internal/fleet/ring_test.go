package fleet

import (
	"fmt"
	"reflect"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Session keys are sha256 hex strings; hex-ish synthetic keys are
		// representative enough for distribution tests.
		keys[i] = fmt.Sprintf("session-%06d", i)
	}
	return keys
}

func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	a := NewRing([]string{"r1", "r2", "r3"}, 64)
	b := NewRing([]string{"r3", "r1", "r2", "r1"}, 64)
	if !reflect.DeepEqual(a.Members(), b.Members()) {
		t.Fatalf("members differ: %v vs %v", a.Members(), b.Members())
	}
	for _, key := range ringKeys(500) {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner of %q differs across construction orders: %q vs %q", key, a.Owner(key), b.Owner(key))
		}
		if !reflect.DeepEqual(a.Candidates(key, 0), b.Candidates(key, 0)) {
			t.Fatalf("candidates of %q differ across construction orders", key)
		}
	}
}

func TestRingCandidatesDistinctAndOwnerFirst(t *testing.T) {
	r := NewRing([]string{"r1", "r2", "r3", "r4"}, 64)
	for _, key := range ringKeys(200) {
		cands := r.Candidates(key, 0)
		if len(cands) != 4 {
			t.Fatalf("candidates(%q) = %v, want all 4 members", key, cands)
		}
		if cands[0] != r.Owner(key) {
			t.Fatalf("candidates(%q)[0] = %q, owner = %q", key, cands[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("candidates(%q) repeats %q", key, c)
			}
			seen[c] = true
		}
		if got := r.Candidates(key, 2); len(got) != 2 || got[0] != cands[0] || got[1] != cands[1] {
			t.Fatalf("candidates(%q, 2) = %v, want prefix of %v", key, got, cands)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"r1", "r2", "r3"}, 0)
	const n = 30000
	counts := map[string]int{}
	for _, key := range ringKeys(n) {
		counts[r.Owner(key)]++
	}
	want := n / 3
	for m, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("replica %s owns %d of %d keys, want within [%d, %d]", m, c, n, want/2, want*2)
		}
	}
}

// TestRingKeyMovementBounded pins the property the rebalance design
// depends on: scaling 3→4 replicas moves roughly 1/4 of the keys
// (bounded here at <2× the ideal minimum), where naive mod-N hashing
// reshuffles ~3/4 of them.
func TestRingKeyMovementBounded(t *testing.T) {
	before := NewRing([]string{"r1", "r2", "r3"}, 0)
	after := NewRing([]string{"r1", "r2", "r3", "r4"}, 0)
	const n = 30000
	keys := ringKeys(n)

	moved := 0
	for _, key := range keys {
		if before.Owner(key) != after.Owner(key) {
			moved++
		}
	}
	// Ideal movement on 3→4 is n/4 (only keys the new replica takes).
	ideal := n / 4
	if moved >= 2*ideal {
		t.Errorf("ring moved %d of %d keys on 3→4, want < 2×ideal (%d)", moved, n, 2*ideal)
	}

	// Naive mod-N for comparison: hash % 3 vs hash % 4.
	modMoved := 0
	for _, key := range keys {
		h := hash64(key)
		if h%3 != h%4 {
			modMoved++
		}
	}
	if moved >= modMoved {
		t.Errorf("ring movement (%d) not better than mod-N movement (%d)", moved, modMoved)
	}
	t.Logf("3→4 key movement: ring %d (%.1f%%), mod-N %d (%.1f%%), ideal %d (25%%)",
		moved, 100*float64(moved)/n, modMoved, 100*float64(modMoved)/n, ideal)
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 0)
	if empty.Owner("k") != "" || empty.Candidates("k", 0) != nil {
		t.Error("empty ring should own nothing")
	}
	one := NewRing([]string{"solo"}, 0)
	if one.Owner("k") != "solo" {
		t.Errorf("single-member ring owner = %q", one.Owner("k"))
	}
	if got := one.Candidates("k", 5); len(got) != 1 || got[0] != "solo" {
		t.Errorf("single-member candidates = %v", got)
	}
}
