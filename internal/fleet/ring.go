// Package fleet promotes the single-process cprd daemon into a
// horizontally scalable fleet: a thin, stateless front tier that routes
// load/verify/repair/delta requests across N cprd worker replicas by the
// session's content address, with per-replica health probes, time-boxed
// leases on hash-ring ownership, bounded retry with jittered backoff,
// hedged failover to the ring successor, and graceful rebalance on
// scale-up/down.
//
// Routing is a pure function of the request's content address and the
// ring state. Because worker answers are deterministic in the session
// contents (the determinism suite pins byte-identity across parallelism
// and cache replay), a request answered by any healthy replica is
// byte-identical to the single-node answer — the property the fleet
// differential oracle (internal/crosscheck.CheckFleet) enforces.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// defaultVNodes is the virtual-node count per replica: enough for <10%
// imbalance across a handful of replicas while keeping ring rebuilds
// (every membership change) cheap.
const defaultVNodes = 64

// Ring is an immutable consistent-hash ring over replica names. Build
// with NewRing; membership changes build a new ring, so routing reads
// never lock against rebalances.
type Ring struct {
	points  []ringPoint // sorted by hash
	members []string    // sorted, distinct
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring from the given replica names (duplicates are
// dropped) with vnodes virtual nodes per replica (0 = default 64). The
// ring is deterministic in the member set: order of the input slice
// does not matter.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{
		points:  make([]ringPoint, 0, len(uniq)*vnodes),
		members: uniq,
	}
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(m + "#" + strconv.Itoa(i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash collisions across members are broken by name so the ring
		// stays a pure function of the member set.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the ring's member names, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Len returns the number of members.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the replica owning key: the member of the first ring
// point at or clockwise of the key's hash. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].member
}

// Candidates returns up to max distinct members in failover order: the
// owner first, then each successive distinct member clockwise around the
// ring. max <= 0 returns every member. This is the order the front tier
// tries replicas in: the ring successor of a failed owner is
// Candidates(key, 2)[1].
func (r *Ring) Candidates(key string, max int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if max <= 0 || max > len(r.members) {
		max = len(r.members)
	}
	out := make([]string, 0, max)
	seen := make(map[string]bool, max)
	for i, start := 0, r.search(key); i < len(r.points) && len(out) < max; i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// search returns the index of the first point at or clockwise of the
// key's hash.
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// hash64 maps a string to a ring position: the first 8 bytes of its
// sha256, which matches how session keys themselves are derived
// (ContentKey is a sha256) and gives a far better spread than FNV for
// the structured "name#vnode" point labels.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
