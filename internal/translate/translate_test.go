package translate

import (
	"net/netip"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/topology"
)

// parseFigure2a returns the configs and extracted network.
func parseFigure2a(t *testing.T) (map[string]*config.Config, *topology.Network) {
	t.Helper()
	configs, err := config.ParseFigure2a()
	if err != nil {
		t.Fatal(err)
	}
	cfgMap := map[string]*config.Config{}
	for _, c := range configs {
		cfgMap[c.Hostname] = c
	}
	n, err := config.Extract(configs)
	if err != nil {
		t.Fatal(err)
	}
	return cfgMap, n
}

func figure2aPolicies(n *topology.Network) []policy.Policy {
	s, tt, u, r := n.Subnet("S"), n.Subnet("T"), n.Subnet("U"), n.Subnet("R")
	return []policy.Policy{
		{Kind: policy.AlwaysBlocked, TC: topology.TrafficClass{Src: s, Dst: u}},
		{Kind: policy.AlwaysWaypoint, TC: topology.TrafficClass{Src: s, Dst: tt}},
		{Kind: policy.KReachable, K: 2, TC: topology.TrafficClass{Src: s, Dst: tt}},
		{Kind: policy.PrimaryPath, Path: []string{"A", "B", "C"}, TC: topology.TrafficClass{Src: r, Dst: tt}},
	}
}

// TestEndToEndRepairFigure2a is the full pipeline test: parse configs,
// repair, translate, re-parse the patched configs, and verify every
// policy on the rebuilt network.
func TestEndToEndRepairFigure2a(t *testing.T) {
	cfgs, n := parseFigure2a(t)
	h := harc.Build(n)
	policies := figure2aPolicies(n)
	if len(policy.Violations(h, policies)) != 1 {
		t.Fatal("expected exactly EP3 violated")
	}
	res, err := core.Repair(h, policies, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("unsolved: %+v", res.Stats)
	}
	orig := harc.StateOf(h)
	plan, err := Translate(h, orig, res.State, cfgs)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if plan.NumLines() == 0 {
		t.Fatal("repair should change at least one line")
	}
	if plan.NumLines() > 4 {
		t.Errorf("plan has %d lines, expected a small repair:\n%s", plan.NumLines(), plan)
	}
	// The patched configs must re-parse and satisfy every policy.
	var rebuilt []*config.Config
	for name, c := range cfgs {
		rc, err := config.Parse(name, c.Print())
		if err != nil {
			t.Fatalf("patched config %s does not re-parse: %v\n%s", name, err, c.Print())
		}
		rebuilt = append(rebuilt, rc)
	}
	n2, err := config.Extract(rebuilt)
	if err != nil {
		t.Fatalf("Extract after patching: %v", err)
	}
	h2 := harc.Build(n2)
	// Policies reference subnets of the old network; remap.
	policies2 := figure2aPolicies(n2)
	if v := policy.Violations(h2, policies2); len(v) != 0 {
		t.Errorf("rebuilt network still violates: %v\nplan:\n%s", v, plan)
	}
}

func TestTable3StaticRouteAddition(t *testing.T) {
	cfgs, n := parseFigure2a(t)
	h := harc.Build(n)
	orig := harc.StateOf(h)
	rep := orig.Clone()
	// Add the A->C edge for destination T as a static route (Figure 2d).
	var slotKey string
	for _, s := range h.Slots {
		if s.FromProc != nil && s.ToProc != nil &&
			s.FromProc.Device.Name == "A" && s.ToProc.Device.Name == "C" &&
			s.Kind.String() == "inter" {
			slotKey = s.Key()
		}
	}
	rep.Dst["T"][slotKey] = true
	rep.Static[harc.StaticKey("T", slotKey)] = true
	// Children follow: the new edge appears in every tcETG toward T
	// (destination-based routing, no ACLs added).
	for _, tc := range h.TCs {
		if tc.Dst.Name == "T" {
			rep.TC[tc.Key()][slotKey] = true
		}
	}
	plan, err := Translate(h, orig, rep, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumLines() != 1 {
		t.Fatalf("expected 1 line (static route), got %d:\n%s", plan.NumLines(), plan)
	}
	a := cfgs["A"]
	if len(a.Statics) != 1 {
		t.Fatalf("static route not added to A: %+v", a.Statics)
	}
	if a.Statics[0].Prefix.String() != "10.20.0.0/16" {
		t.Errorf("static prefix %s", a.Statics[0].Prefix)
	}
	if a.Statics[0].NextHop != netip.MustParseAddr("10.0.2.3") {
		t.Errorf("static next hop %s", a.Statics[0].NextHop)
	}
}

func TestTable3StaticRouteRemoval(t *testing.T) {
	cfgs, n := parseFigure2a(t)
	// Install a static route first.
	cfgs["A"].AddStaticRoute(netip.MustParsePrefix("10.20.0.0/16"), netip.MustParseAddr("10.0.2.3"), 3)
	var rebuilt []*config.Config
	for name, c := range cfgs {
		rc, err := config.Parse(name, c.Print())
		if err != nil {
			t.Fatal(err)
		}
		rebuilt = append(rebuilt, rc)
		cfgs[name] = rc
	}
	n2, err := config.Extract(rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	n = n2
	h := harc.Build(n)
	orig := harc.StateOf(h)
	rep := orig.Clone()
	for _, s := range h.Slots {
		if s.Kind.String() == "inter" && s.FromProc.Device.Name == "A" && s.ToProc.Device.Name == "C" {
			if !orig.Dst["T"][s.Key()] {
				t.Fatal("static-backed edge should be present initially")
			}
			rep.Dst["T"][s.Key()] = false
			rep.Static[harc.StaticKey("T", s.Key())] = false
		}
	}
	plan, err := Translate(h, orig, rep, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumLines() != 1 {
		t.Fatalf("expected 1 removed line, got %d:\n%s", plan.NumLines(), plan)
	}
	if len(cfgs["A"].Statics) != 0 {
		t.Error("static route not removed")
	}
}

func TestTable3ACLChanges(t *testing.T) {
	cfgs, n := parseFigure2a(t)
	h := harc.Build(n)
	orig := harc.StateOf(h)
	rep := orig.Clone()
	s, u := n.Subnet("S"), n.Subnet("U")
	tcSU := topology.TrafficClass{Src: s, Dst: u}
	// Unblock S->U: set the A->B edge present in the tcETG (it is present
	// in the dETG).
	for _, sl := range h.Slots {
		if sl.Kind.String() == "inter" && sl.FromProc.Device.Name == "A" && sl.ToProc.Device.Name == "B" {
			rep.TC[tcSU.Key()][sl.Key()] = true
		}
	}
	plan, err := Translate(h, orig, rep, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumLines() != 1 {
		t.Fatalf("expected 1 ACL line, got %d:\n%s", plan.NumLines(), plan)
	}
	// The ACL on B must now permit S->U.
	acl := cfgs["B"].ACL("BLOCK-U")
	if acl == nil {
		t.Fatal("BLOCK-U gone")
	}
	if !acl.Entries[0].Permit || acl.Entries[0].Src != s.Prefix || acl.Entries[0].Dst != u.Prefix {
		t.Errorf("expected prepended permit for S->U, got %+v", acl.Entries[0])
	}
}

func TestTable3ACLAddition(t *testing.T) {
	cfgs, n := parseFigure2a(t)
	h := harc.Build(n)
	orig := harc.StateOf(h)
	rep := orig.Clone()
	s, tt := n.Subnet("S"), n.Subnet("T")
	tcST := topology.TrafficClass{Src: s, Dst: tt}
	// Block S->T on the B->C hop (tcETG-only removal).
	for _, sl := range h.Slots {
		if sl.Kind.String() == "inter" && sl.FromProc.Device.Name == "B" && sl.ToProc.Device.Name == "C" {
			rep.TC[tcST.Key()][sl.Key()] = false
		}
	}
	plan, err := Translate(h, orig, rep, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	// C has no in-ACL on its B-facing interface: creating one costs 3
	// lines (deny + permit-any + access-group).
	if plan.NumLines() != 3 {
		t.Fatalf("expected 3 lines for fresh ACL, got %d:\n%s", plan.NumLines(), plan)
	}
}

func TestTable3RouteFilter(t *testing.T) {
	cfgs, n := parseFigure2a(t)
	h := harc.Build(n)
	orig := harc.StateOf(h)
	rep := orig.Clone()
	// Filter destination U on C's process: remove C's self edge in
	// dETG(U) (and consequently in tcETGs toward U).
	selfKey := "self:C:ospf10"
	if !orig.Dst["U"][selfKey] {
		t.Fatal("self edge should be present initially")
	}
	// A route filter on C for U removes C's self edge and every edge
	// toward C (C no longer advertises U).
	var removed []string
	removed = append(removed, selfKey)
	for _, s := range h.Slots {
		if s.Kind.String() == "inter" && s.ToProc.Device.Name == "C" {
			removed = append(removed, s.Key())
		}
	}
	for _, key := range removed {
		rep.Dst["U"][key] = false
		for _, tc := range h.TCs {
			if tc.Dst.Name == "U" {
				rep.TC[tc.Key()][key] = false
			}
		}
	}
	rep.RouteFilter[harc.RFKey("U", "C:ospf10")] = true
	plan, err := Translate(h, orig, rep, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumLines() != 1 {
		t.Fatalf("expected 1 distribute-list line, got %d:\n%s", plan.NumLines(), plan)
	}
	r := cfgs["C"].Router(topology.OSPF, 10)
	if len(r.DistributeListIn) != 1 || r.DistributeListIn[0] != n.Subnet("U").Prefix {
		t.Errorf("distribute-list not added: %v", r.DistributeListIn)
	}
}

func TestTable3AdjacencyEnableDisable(t *testing.T) {
	cfgs, n := parseFigure2a(t)
	h := harc.Build(n)
	orig := harc.StateOf(h)
	rep := orig.Clone()
	// Enable the A-C adjacency (both directions).
	for _, s := range h.Slots {
		if s.Kind.String() != "inter" {
			continue
		}
		devs := s.FromProc.Device.Name + s.ToProc.Device.Name
		if devs == "AC" || devs == "CA" {
			rep.All[s.Key()] = true
			for _, d := range []string{"T", "U", "R", "S"} {
				rep.Dst[d][s.Key()] = true
			}
			for _, tc := range h.TCs {
				rep.TC[tc.Key()][s.Key()] = true
			}
		}
	}
	plan, err := Translate(h, orig, rep, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	// Only C's passive-interface line blocks the adjacency: 1 line.
	if plan.NumLines() != 1 {
		t.Fatalf("expected 1 line (remove passive), got %d:\n%s", plan.NumLines(), plan)
	}
	// Now disable the A-B adjacency on a fresh copy.
	cfgs2, n2 := parseFigure2a(t)
	h2 := harc.Build(n2)
	orig2 := harc.StateOf(h2)
	rep2 := orig2.Clone()
	for _, s := range h2.Slots {
		if s.Kind.String() != "inter" {
			continue
		}
		devs := s.FromProc.Device.Name + s.ToProc.Device.Name
		if devs == "AB" || devs == "BA" {
			rep2.All[s.Key()] = false
			for _, d := range []string{"T", "U", "R", "S"} {
				rep2.Dst[d][s.Key()] = false
			}
			for _, tc := range h2.TCs {
				rep2.TC[tc.Key()][s.Key()] = false
			}
		}
	}
	plan2, err := Translate(h2, orig2, rep2, cfgs2)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.NumLines() != 1 {
		t.Fatalf("expected 1 line (add passive), got %d:\n%s", plan2.NumLines(), plan2)
	}
}

func TestWaypointChangeTracked(t *testing.T) {
	cfgs, n := parseFigure2a(t)
	h := harc.Build(n)
	orig := harc.StateOf(h)
	rep := orig.Clone()
	rep.Waypoint["A-C"] = true
	plan, err := Translate(h, orig, rep, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Waypoints) != 1 || !plan.Waypoints[0].Add || plan.Waypoints[0].Link != "A-C" {
		t.Fatalf("waypoint change not tracked: %+v", plan.Waypoints)
	}
	if plan.NumLines() != 0 {
		t.Errorf("waypoints must not count as config lines, got %d", plan.NumLines())
	}
	// The config marker must be set so re-extraction sees the middlebox.
	found := false
	for _, is := range cfgs["A"].Interfaces {
		if is.Waypoint {
			found = true
		}
	}
	for _, is := range cfgs["C"].Interfaces {
		if is.Waypoint {
			found = true
		}
	}
	if !found {
		t.Error("waypoint marker not applied to any config")
	}
}

func TestImpactedTCs(t *testing.T) {
	_, n := parseFigure2a(t)
	h := harc.Build(n)
	orig := harc.StateOf(h)
	rep := orig.Clone()
	// Change only the S->U tcETG.
	tcSU := topology.TrafficClass{Src: n.Subnet("S"), Dst: n.Subnet("U")}
	for _, s := range h.Slots {
		if s.Kind.String() == "inter" && s.FromProc.Device.Name == "A" && s.ToProc.Device.Name == "B" {
			rep.TC[tcSU.Key()][s.Key()] = true
		}
	}
	impacted := ImpactedTCs(h, orig, rep)
	if len(impacted) != 1 || impacted[0].Key() != tcSU.Key() {
		t.Fatalf("impacted = %v, want just S->U", impacted)
	}
	// A cost change impacts every class whose ETG uses the interface.
	rep2 := orig.Clone()
	rep2.Cost["B/Ethernet0/1"] = 9
	impacted2 := ImpactedTCs(h, orig, rep2)
	if len(impacted2) == 0 {
		t.Fatal("cost change should impact classes using B->A")
	}
	for _, tc := range impacted2 {
		if tc.Dst.Name == "U" && tc.Src.Name == "T" {
			return // classes through B->A are impacted, as expected
		}
	}
}

func TestCloneConfigsIndependent(t *testing.T) {
	cfgs, _ := parseFigure2a(t)
	clone, err := CloneConfigs(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	clone["A"].AddStaticRoute(netip.MustParsePrefix("10.20.0.0/16"), netip.MustParseAddr("10.0.2.3"), 3)
	if len(cfgs["A"].Statics) != 0 {
		t.Error("mutating clone affected original")
	}
}

func TestTranslateMissingConfig(t *testing.T) {
	cfgs, n := parseFigure2a(t)
	delete(cfgs, "C")
	h := harc.Build(n)
	orig := harc.StateOf(h)
	rep := orig.Clone()
	// Force a change on C.
	rep.Dst["U"]["self:C:ospf10"] = false
	for _, tc := range h.TCs {
		if tc.Dst.Name == "U" {
			rep.TC[tc.Key()]["self:C:ospf10"] = false
		}
	}
	if _, err := Translate(h, orig, rep, cfgs); err == nil {
		t.Error("expected error for missing device config")
	}
}
