// Package translate converts repaired HARC states back into router
// configuration changes (paper §6, Table 3). Each difference between the
// original and repaired state maps to a specific construct edit: ACL
// entries for tcETG deviations, route filters and static routes for dETG
// deviations, adjacency and redistribution changes for aETG edits,
// interface costs for PC4, and middlebox placements for waypoints.
package translate

import (
	"fmt"
	"sort"

	"repro/internal/arc"
	"repro/internal/config"
	"repro/internal/harc"
	"repro/internal/topology"
)

// WaypointChange records a middlebox addition or removal on a link. The
// paper counts these separately from configuration lines ("two lines of
// configuration, plus a firewall").
type WaypointChange struct {
	Link string
	Add  bool
}

// Plan is the full set of edits realizing a repaired state.
type Plan struct {
	Lines     []config.LineChange
	Waypoints []WaypointChange
	// Groups partitions Lines by the construct edit that produced them: one
	// group per mutator call (e.g. a fresh ACL plus its attachment is one
	// group). Groups is the granularity at which dropping a patch is
	// meaningful — individual lines of a group are not independent.
	Groups [][]config.LineChange
	// WaypointLines holds, parallel to Waypoints, the configuration lines
	// mirroring each middlebox change (the "waypoint" interface marker).
	// They are excluded from Lines because the paper counts middlebox
	// placements separately from configuration lines.
	WaypointLines [][]config.LineChange
}

// NumLines returns the number of configuration lines changed.
func (p *Plan) NumLines() int { return len(p.Lines) }

// String renders the plan as a diff-style listing.
func (p *Plan) String() string {
	out := ""
	for _, lc := range p.Lines {
		out += lc.String() + "\n"
	}
	for _, wc := range p.Waypoints {
		verb := "add"
		if !wc.Add {
			verb = "remove"
		}
		out += fmt.Sprintf("%s waypoint on link %s\n", verb, wc.Link)
	}
	return out
}

// Translate computes and applies the configuration changes that realize
// the repaired state, mutating cfgs in place. cfgs maps hostnames to
// parsed configurations and must cover every device of the network.
func Translate(h *harc.HARC, orig, repaired *harc.State, cfgs map[string]*config.Config) (*Plan, error) {
	t := &translator{h: h, orig: orig, rep: repaired, cfgs: cfgs, plan: &Plan{}}
	if err := t.run(); err != nil {
		return nil, err
	}
	return t.plan, nil
}

type translator struct {
	h    *harc.HARC
	orig *harc.State
	rep  *harc.State
	cfgs map[string]*config.Config
	plan *Plan
}

func (t *translator) cfg(dev *topology.Device) (*config.Config, error) {
	c := t.cfgs[dev.Name]
	if c == nil {
		return nil, fmt.Errorf("translate: no configuration for device %s", dev.Name)
	}
	return c, nil
}

func (t *translator) add(lcs []config.LineChange, err error) error {
	if err != nil {
		return err
	}
	t.addLines(lcs)
	return nil
}

// addLines records one mutator call's line changes as a group.
func (t *translator) addLines(lcs []config.LineChange) {
	if len(lcs) == 0 {
		return
	}
	t.plan.Lines = append(t.plan.Lines, lcs...)
	t.plan.Groups = append(t.plan.Groups, lcs)
}

func (t *translator) run() error {
	if err := t.adjacencies(); err != nil {
		return err
	}
	if err := t.redistribution(); err != nil {
		return err
	}
	if err := t.routeFilters(); err != nil {
		return err
	}
	if err := t.staticRoutes(); err != nil {
		return err
	}
	if err := t.interfaceCosts(); err != nil {
		return err
	}
	if err := t.acls(); err != nil {
		return err
	}
	t.waypoints()
	return nil
}

// adjacencies handles aETG inter-device edge changes (Table 3: "enable
// routing" and its inverse). Both directions of an adjacency share one
// change; the canonical direction (smaller key) drives it.
func (t *translator) adjacencies() error {
	done := map[string]bool{}
	for _, s := range t.h.Slots {
		if s.Kind != arc.SlotInterDevice {
			continue
		}
		pair := s.Link.Name() + "|" + s.FromProc.Name() + "|" + s.ToProc.Name()
		revPair := s.Link.Name() + "|" + s.ToProc.Name() + "|" + s.FromProc.Name()
		if done[pair] || done[revPair] {
			continue
		}
		done[pair] = true
		origA, newA := t.orig.All[s.Key()], t.rep.All[s.Key()]
		if origA == newA {
			continue
		}
		if newA {
			// Enable: fix whichever side prevents the adjacency. BGP
			// sessions need a neighbor statement per side; IGPs need the
			// interface active (non-passive and covered).
			for _, side := range []struct {
				proc *topology.Process
				intf *topology.Interface
				peer *topology.Interface
				far  *topology.Process
			}{
				{s.FromProc, s.FromIntf, s.ToIntf, s.ToProc},
				{s.ToProc, s.ToIntf, s.FromIntf, s.FromProc},
			} {
				if side.proc.UsesInterface(side.intf) && !side.proc.IsPassive(side.intf) {
					continue
				}
				c, err := t.cfg(side.proc.Device)
				if err != nil {
					return err
				}
				if side.proc.Proto == topology.BGP {
					if !side.peer.Prefix.IsValid() {
						return fmt.Errorf("translate: BGP peer interface %s has no address", side.peer.Name)
					}
					if err := t.add(c.AddBGPNeighbor(side.proc.ID, side.peer.Prefix.Addr(), side.far.ID)); err != nil {
						return err
					}
					continue
				}
				if err := t.add(c.EnableAdjacency(side.proc.Proto, side.proc.ID, side.intf.Name)); err != nil {
					return err
				}
			}
		} else {
			// Disable: one line suffices (passive-interface for IGPs,
			// neighbor removal for BGP).
			c, err := t.cfg(s.FromProc.Device)
			if err != nil {
				return err
			}
			if s.FromProc.Proto == topology.BGP {
				if err := t.add(c.RemoveBGPNeighbor(s.FromProc.ID, s.ToIntf.Prefix.Addr())); err != nil {
					return err
				}
			} else if err := t.add(c.DisableAdjacency(s.FromProc.Proto, s.FromProc.ID, s.FromIntf.Name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// redistribution handles aETG intra-device redistribution edges.
func (t *translator) redistribution() error {
	for _, s := range t.h.Slots {
		if s.Kind != arc.SlotIntraRedist {
			continue
		}
		origA, newA := t.orig.All[s.Key()], t.rep.All[s.Key()]
		if origA == newA {
			continue
		}
		entry, owner := s.ToProc, s.FromProc
		c, err := t.cfg(entry.Device)
		if err != nil {
			return err
		}
		if newA {
			if err := t.add(c.AddRedistribute(entry.Proto, entry.ID, owner.Proto, owner.ID)); err != nil {
				return err
			}
		} else {
			if err := t.add(c.RemoveRedistribute(entry.Proto, entry.ID, owner.Proto, owner.ID)); err != nil {
				return err
			}
		}
	}
	return nil
}

// routeFilters compares the explicit per-(process, destination) filter
// constructs of the two states (Table 3 intra-device rows).
func (t *translator) routeFilters() error {
	for _, dst := range t.h.Dsts {
		for _, s := range t.h.Slots {
			if s.Kind != arc.SlotIntraSelf {
				continue
			}
			rfKey := harc.RFKey(dst.Name, s.FromProc.Name())
			origRF := t.orig.RouteFilter[rfKey]
			newRF := t.rep.RouteFilter[rfKey]
			if origRF == newRF {
				continue
			}
			proc := s.FromProc
			c, err := t.cfg(proc.Device)
			if err != nil {
				return err
			}
			if newRF {
				if err := t.add(c.AddRouteFilter(proc.Proto, proc.ID, dst.Prefix)); err != nil {
					return err
				}
			} else {
				if err := t.add(c.RemoveRouteFilter(proc.Proto, proc.ID, dst.Prefix)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// staticRoutes compares the explicit static-route constructs of the two
// states (Table 3: "add static route for dst" and the inverse).
func (t *translator) staticRoutes() error {
	for _, dst := range t.h.Dsts {
		for _, s := range t.h.Slots {
			if s.Kind != arc.SlotInterDevice {
				continue
			}
			stKey := harc.StaticKey(dst.Name, s.Key())
			origStatic := t.orig.Static[stKey]
			newStatic := t.rep.Static[stKey]
			c, err := t.cfg(s.FromProc.Device)
			if err != nil {
				return err
			}
			nh := s.ToIntf.Prefix.Addr()
			dist := int(t.rep.SlotCost(s, dst))
			switch {
			case !origStatic && newStatic:
				t.addLines(c.AddStaticRoute(dst.Prefix, nh, dist))
			case origStatic && !newStatic:
				t.addLines(c.RemoveStaticRoute(dst.Prefix, nh))
			case origStatic && newStatic:
				if sr := s.StaticBacked(dst); sr != nil && sr.Distance != dist {
					t.addLines(c.SetStaticDistance(dst.Prefix, nh, dist))
				}
			}
		}
	}
	return nil
}

// interfaceCosts emits "ip ospf cost" edits for cost variables that
// changed and back at least one adjacency edge in the repaired aETG
// (costs that only back static routes are carried on the static lines).
func (t *translator) interfaceCosts() error {
	changed := map[string]bool{}
	for ck, v := range t.rep.Cost {
		if t.orig.Cost[ck] != v {
			changed[ck] = true
		}
	}
	if len(changed) == 0 {
		return nil
	}
	emitted := map[string]bool{}
	for _, s := range t.h.Slots {
		if s.Kind != arc.SlotInterDevice {
			continue
		}
		ck := harc.CostKey(s)
		if !changed[ck] || emitted[ck] || !t.rep.All[s.Key()] {
			continue
		}
		emitted[ck] = true
		c, err := t.cfg(s.FromIntf.Device)
		if err != nil {
			return err
		}
		if err := t.add(c.SetInterfaceCost(s.FromIntf.Name, int(t.rep.Cost[ck]))); err != nil {
			return err
		}
	}
	return nil
}

// acls handles tcETG deviations (Table 3: "remove tc from ACL" and the
// inverse) for inter-device edges and subnet attachment edges.
func (t *translator) acls() error {
	for _, tc := range t.h.TCs {
		key := tc.Key()
		origM, newM := t.orig.TC[key], t.rep.TC[key]
		origDM, newDM := t.orig.Dst[tc.Dst.Name], t.rep.Dst[tc.Dst.Name]
		for _, s := range t.h.Slots {
			// addACL: the repaired state needs a deny that did not exist.
			// removeACL: an existing deny must go because the tc edge is
			// now required. A stale deny whose parent edge also vanished
			// stays in place — Table 2 charges no change for a deviation
			// that continues.
			var addACL, removeACL bool
			var dev *topology.Device
			var intfName, dir string
			switch s.Kind {
			case arc.SlotInterDevice:
				origACL := origDM[s.Key()] && !origM[s.Key()]
				addACL = newDM[s.Key()] && !newM[s.Key()] && !origACL
				removeACL = origACL && newM[s.Key()]
				dev, intfName, dir = s.ToIntf.Device, s.ToIntf.Name, "in"
			case arc.SlotSource:
				if s.Subnet != tc.Src {
					continue
				}
				addACL = origM[s.Key()] && !newM[s.Key()]
				removeACL = !origM[s.Key()] && newM[s.Key()]
				dev, intfName, dir = s.Intf.Device, s.Intf.Name, "in"
			case arc.SlotDest:
				if s.Subnet != tc.Dst {
					continue
				}
				origACL := origDM[s.Key()] && !origM[s.Key()]
				addACL = newDM[s.Key()] && !newM[s.Key()] && !origACL
				removeACL = origACL && newM[s.Key()]
				dev, intfName, dir = s.Intf.Device, s.Intf.Name, "out"
			default:
				continue
			}
			if !addACL && !removeACL {
				continue
			}
			c, err := t.cfg(dev)
			if err != nil {
				return err
			}
			if addACL {
				if err := t.add(c.AddACLDeny(intfName, dir, tc.Src.Prefix, tc.Dst.Prefix)); err != nil {
					return err
				}
			} else {
				if err := t.add(c.RemoveACLDeny(intfName, dir, tc.Src.Prefix, tc.Dst.Prefix)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// waypoints records middlebox changes and mirrors them into the config
// (a "waypoint" marker on one endpoint interface).
func (t *translator) waypoints() {
	names := make([]string, 0, len(t.rep.Waypoint))
	for name := range t.rep.Waypoint {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		newWP := t.rep.Waypoint[name]
		if t.orig.Waypoint[name] == newWP {
			continue
		}
		t.plan.Waypoints = append(t.plan.Waypoints, WaypointChange{Link: name, Add: newWP})
		var mirrored []config.LineChange
		for _, l := range t.h.Network.Links {
			if l.Name() != name {
				continue
			}
			if c := t.cfgs[l.A.Device.Name]; c != nil {
				// Waypoint markers are tracked separately from line counts;
				// the mirroring lines go to WaypointLines, not Lines.
				if lcs, err := c.SetWaypoint(l.A.Name, newWP); err == nil {
					mirrored = append(mirrored, lcs...)
				}
			}
		}
		t.plan.WaypointLines = append(t.plan.WaypointLines, mirrored)
	}
}

// ImpactedTCs returns the traffic classes whose forwarding behavior the
// repair touches: any tcETG presence change, a cost change on an edge in
// the class's ETG, or a waypoint change on a link in its ETG (the metric
// of Figure 11a).
func ImpactedTCs(h *harc.HARC, orig, repaired *harc.State) []topology.TrafficClass {
	changedCosts := map[string]bool{}
	for ck, v := range repaired.Cost {
		if orig.Cost[ck] != v {
			changedCosts[ck] = true
		}
	}
	changedWPs := map[string]bool{}
	for name, v := range repaired.Waypoint {
		if orig.Waypoint[name] != v {
			changedWPs[name] = true
		}
	}
	var out []topology.TrafficClass
	for _, tc := range h.TCs {
		key := tc.Key()
		origM, newM := orig.TC[key], repaired.TC[key]
		impacted := false
		for _, s := range h.Slots {
			sk := s.Key()
			if origM[sk] != newM[sk] {
				impacted = true
				break
			}
			if !newM[sk] || s.Kind != arc.SlotInterDevice {
				continue
			}
			if changedCosts[harc.CostKey(s)] || changedWPs[s.Link.Name()] {
				impacted = true
				break
			}
		}
		if impacted {
			out = append(out, tc)
		}
	}
	return out
}

// ApplyPlan replays a plan's recorded line changes (including the
// waypoint-mirroring lines) onto a set of parsed configurations. Translate
// already mutates the configurations it is given; ApplyPlan exists to
// replay the same edits onto an independent copy — e.g. to check that the
// recorded patch, and nothing else, reproduces the repaired behavior.
func ApplyPlan(cfgs map[string]*config.Config, plan *Plan) error {
	apply := func(lc config.LineChange) error {
		c := cfgs[lc.Device]
		if c == nil {
			return fmt.Errorf("translate: apply: no configuration for device %s", lc.Device)
		}
		return c.Apply(lc)
	}
	for _, lc := range plan.Lines {
		if err := apply(lc); err != nil {
			return err
		}
	}
	for _, group := range plan.WaypointLines {
		for _, lc := range group {
			if err := apply(lc); err != nil {
				return err
			}
		}
	}
	return nil
}

// CloneConfigs deep-copies parsed configurations via print/parse.
func CloneConfigs(cfgs map[string]*config.Config) (map[string]*config.Config, error) {
	out := make(map[string]*config.Config, len(cfgs))
	for name, c := range cfgs {
		cc, err := config.Parse(name, c.Print())
		if err != nil {
			return nil, err
		}
		out[name] = cc
	}
	return out, nil
}
