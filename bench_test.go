// Benchmarks regenerating every table and figure of the paper's
// evaluation (§8), plus ablations over CPR's design choices and
// micro-benchmarks of the substrates. Each figure benchmark runs its
// experiment at a reduced-but-representative scale; cmd/cpreval runs the
// same experiments at the paper's full dimensions.
package cpr_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	cpr "repro"
	"repro/internal/arc"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/generate"
	"repro/internal/greedy"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/server"
	"repro/internal/smt/maxsat"
	"repro/internal/smt/sat"
	"repro/internal/topology"
	"repro/internal/translate"
)

// benchCfg is the reduced scale shared by the figure benchmarks.
func benchCfg() eval.Config {
	cfg := eval.Quick()
	cfg.CorpusNetworks = 3
	cfg.SubnetScale = 0.3
	cfg.PolicySweep = []int{6}
	cfg.SizeSweepK = []int{4}
	cfg.Fig8aPolicies = 4
	cfg.Fig8cPolicies = 6
	cfg.AllTCsBudget = 100000
	return cfg
}

// --- Table 1: policy-class verification characteristics ---

func benchVerify(b *testing.B, kind policy.Kind) {
	n := topology.Figure2a()
	h := harc.Build(n)
	s, tt, u, r := n.Subnet("S"), n.Subnet("T"), n.Subnet("U"), n.Subnet("R")
	var p policy.Policy
	switch kind {
	case policy.AlwaysBlocked:
		p = policy.Policy{Kind: kind, TC: topology.TrafficClass{Src: s, Dst: u}}
	case policy.AlwaysWaypoint:
		p = policy.Policy{Kind: kind, TC: topology.TrafficClass{Src: s, Dst: tt}}
	case policy.KReachable:
		p = policy.Policy{Kind: kind, K: 2, TC: topology.TrafficClass{Src: s, Dst: tt}}
	case policy.PrimaryPath:
		p = policy.Policy{Kind: kind, Path: []string{"A", "B", "C"}, TC: topology.TrafficClass{Src: r, Dst: tt}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		policy.Check(h, p)
	}
}

func BenchmarkTable1VerifyPC1(b *testing.B) { benchVerify(b, policy.AlwaysBlocked) }
func BenchmarkTable1VerifyPC2(b *testing.B) { benchVerify(b, policy.AlwaysWaypoint) }
func BenchmarkTable1VerifyPC3(b *testing.B) { benchVerify(b, policy.KReachable) }
func BenchmarkTable1VerifyPC4(b *testing.B) { benchVerify(b, policy.PrimaryPath) }

// --- Table 2/3: encoding and translation of the Figure 2a repair ---

func BenchmarkTable2RepairEncodingFig2a(b *testing.B) {
	n := topology.Figure2a()
	h := harc.Build(n)
	spec := figure2aPoliciesBench(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Repair(h, spec, core.DefaultOptions())
		if err != nil || !res.Solved {
			b.Fatalf("repair failed: %v", err)
		}
	}
}

func BenchmarkTable3TranslateFig2a(b *testing.B) {
	sys, err := cpr.Load(config.Figure2aConfigs())
	if err != nil {
		b.Fatal(err)
	}
	spec := figure2aPoliciesBench(sys.Network)
	res, err := core.Repair(sys.HARC, spec, core.DefaultOptions())
	if err != nil || !res.Solved {
		b.Fatal("repair failed")
	}
	orig := harc.StateOf(sys.HARC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfgs, err := translate.CloneConfigs(sys.Configs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := translate.Translate(sys.HARC, orig, res.State, cfgs); err != nil {
			b.Fatal(err)
		}
	}
}

func figure2aPoliciesBench(n *topology.Network) []policy.Policy {
	s, tt, u, r := n.Subnet("S"), n.Subnet("T"), n.Subnet("U"), n.Subnet("R")
	return []policy.Policy{
		{Kind: policy.AlwaysBlocked, TC: topology.TrafficClass{Src: s, Dst: u}},
		{Kind: policy.AlwaysWaypoint, TC: topology.TrafficClass{Src: s, Dst: tt}},
		{Kind: policy.KReachable, K: 2, TC: topology.TrafficClass{Src: s, Dst: tt}},
		{Kind: policy.PrimaryPath, Path: []string{"A", "B", "C"}, TC: topology.TrafficClass{Src: r, Dst: tt}},
	}
}

// --- Figures 6-11 ---

func benchFigure(b *testing.B, run func(*eval.Context) (*eval.Report, error)) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := eval.NewContext(benchCfg())
		rep, err := run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("no rows produced")
		}
	}
}

func BenchmarkFig6PolicyMix(b *testing.B)      { benchFigure(b, eval.Fig6) }
func BenchmarkFig7RepairTime(b *testing.B)     { benchFigure(b, eval.Fig7) }
func BenchmarkFig8aPolicyClass(b *testing.B)   { benchFigure(b, eval.Fig8a) }
func BenchmarkFig8bPolicyCount(b *testing.B)   { benchFigure(b, eval.Fig8b) }
func BenchmarkFig8cNetworkSize(b *testing.B)   { benchFigure(b, eval.Fig8c) }
func BenchmarkFig9Minimality(b *testing.B)     { benchFigure(b, eval.Fig9) }
func BenchmarkFig11VsHandwritten(b *testing.B) { benchFigure(b, eval.Fig11) }

// --- Ablations over CPR's design choices (DESIGN.md) ---

// benchDCRepair times a repair of one mid-size corpus network.
func benchDCRepair(b *testing.B, opts core.Options) {
	inst, err := generate.DataCenter(generate.DCOptions{
		Name: "bench", Routers: 8, Subnets: 14, BlockedFrac: 0.3,
		FullyBlockedDsts: 1, Violations: 4, Seed: 77,
	})
	if err != nil {
		b.Fatal(err)
	}
	h := inst.Harc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Repair(h, inst.Policies, opts)
		if err != nil || !res.Solved {
			b.Fatalf("repair failed: %v %+v", err, res)
		}
	}
}

// Granularity ablation (the §5.3 scalability claim).
func BenchmarkAblationGranularityPerDst(b *testing.B) {
	benchDCRepair(b, core.DefaultOptions())
}

func BenchmarkAblationGranularityAllTCs(b *testing.B) {
	opts := core.DefaultOptions()
	opts.Granularity = core.AllTCs
	benchDCRepair(b, opts)
}

// MaxSAT algorithm ablation (linear descent vs core-guided Fu-Malik vs
// stratified OLL, the default).
func BenchmarkAblationMaxSATLinear(b *testing.B) {
	opts := core.DefaultOptions()
	opts.Algorithm = maxsat.LinearDescent
	benchDCRepair(b, opts)
}

func BenchmarkAblationMaxSATFuMalik(b *testing.B) {
	opts := core.DefaultOptions()
	opts.Algorithm = maxsat.FuMalik
	benchDCRepair(b, opts)
}

func BenchmarkAblationMaxSATOLL(b *testing.B) {
	opts := core.DefaultOptions()
	opts.Algorithm = maxsat.OLL
	benchDCRepair(b, opts)
}

// benchDC256SolveStage repairs the broken dc-256 preset — the
// solve-stage-dominated workload — and reports the SAT-solve stage's
// share (summed SolveNs across sub-problems) as solve-ns/op alongside
// the end-to-end time. The OLL/Linear pair is the core-guided engine's
// headline speedup evidence in BENCH_baseline.json.
func benchDC256SolveStage(b *testing.B, algo maxsat.Algorithm) {
	inst, err := generate.Preset("dc-256", 7)
	if err != nil {
		b.Fatal(err)
	}
	h := inst.Harc()
	opts := core.DefaultOptions()
	opts.Algorithm = algo
	var solveNs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Repair(h, inst.Policies, opts)
		if err != nil || !res.Solved {
			b.Fatalf("repair failed: %v", err)
		}
		for _, st := range res.Stats {
			solveNs += st.SolveNs
		}
	}
	b.ReportMetric(float64(solveNs)/float64(b.N), "solve-ns/op")
}

func BenchmarkRepairDC256SolveStageOLL(b *testing.B) {
	benchDC256SolveStage(b, maxsat.OLL)
}

func BenchmarkRepairDC256SolveStageLinear(b *testing.B) {
	benchDC256SolveStage(b, maxsat.LinearDescent)
}

// Parallel per-destination solving (the "10 problems in parallel" claim).
func BenchmarkAblationParallel4(b *testing.B) {
	opts := core.DefaultOptions()
	opts.Parallelism = 4
	benchDCRepair(b, opts)
}

// Objective ablation: minimal devices changed instead of minimal lines
// (§5.2's alternative objective).
func BenchmarkAblationObjectiveDevices(b *testing.B) {
	opts := core.DefaultOptions()
	opts.Objective = core.MinDevices
	benchDCRepair(b, opts)
}

// Greedy graph-algorithm baseline (§5's rejected alternative): repairs
// each violated policy in isolation with min-cut/max-flow, without
// cross-policy reasoning or minimality guarantees.
func BenchmarkAblationGreedyBaseline(b *testing.B) {
	inst, err := generate.DataCenter(generate.DCOptions{
		Name: "bench", Routers: 8, Subnets: 14, BlockedFrac: 0.3,
		FullyBlockedDsts: 1, Violations: 4, Seed: 77,
	})
	if err != nil {
		b.Fatal(err)
	}
	h := inst.Harc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := greedy.Repair(h, inst.Policies); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Symmetry compression (Bonsai-style quotient repair, DESIGN.md) ---

// benchCompressRepair times an end-to-end repair with compression forced
// on or off; the On/Off pairs below are the compression speedup evidence
// tracked in BENCH_baseline.json.
func benchCompressRepair(b *testing.B, h *harc.HARC, ps []policy.Policy, mode core.CompressMode) {
	opts := core.DefaultOptions()
	opts.Compress = mode
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Repair(h, ps, opts)
		if err != nil || !res.Solved {
			b.Fatalf("repair failed: %v", err)
		}
		if mode == core.CompressOn && res.Compressed == 0 {
			b.Fatalf("compression never engaged (fallbacks=%d)", res.CompressFallbacks)
		}
	}
}

// compressFatTreeInstance is the acceptance scenario: the fattree-k8
// preset (80 routers) with 12 violated policies across 8 destinations.
func compressFatTreeInstance(b *testing.B) (*harc.HARC, []policy.Policy) {
	b.Helper()
	inst, err := generate.Preset("fattree-k8", 11)
	if err != nil {
		b.Fatal(err)
	}
	if err := generate.BreakFatTree(inst, 13, 12); err != nil {
		b.Fatal(err)
	}
	return inst.Harc(), inst.Policies
}

// compressDCInstance is a mid-size leaf-spine network (64 routers, the
// dc-256 preset's shape at benchmarkable scale): symmetric enough to
// compress well, but with repair time dominated by the concrete-side
// HARC work, so the On/Off gap shows the compression floor rather than
// the fat-tree's best case.
func compressDCInstance(b *testing.B) (*harc.HARC, []policy.Policy) {
	b.Helper()
	inst, err := generate.DataCenter(generate.DCOptions{
		Name: "dc64", Routers: 64, Subnets: 24,
		BlockedFrac: 0.3, FullyBlockedDsts: 2, Violations: 6, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	return inst.Harc(), inst.Policies
}

func BenchmarkCompressRepairFatTreeOn(b *testing.B) {
	h, ps := compressFatTreeInstance(b)
	benchCompressRepair(b, h, ps, core.CompressOn)
}

func BenchmarkCompressRepairFatTreeOff(b *testing.B) {
	h, ps := compressFatTreeInstance(b)
	benchCompressRepair(b, h, ps, core.CompressOff)
}

func BenchmarkCompressRepairDCOn(b *testing.B) {
	h, ps := compressDCInstance(b)
	benchCompressRepair(b, h, ps, core.CompressOn)
}

func BenchmarkCompressRepairDCOff(b *testing.B) {
	h, ps := compressDCInstance(b)
	benchCompressRepair(b, h, ps, core.CompressOff)
}

// benchCompressVerify isolates the patch-acceptance stage of a
// compressed repair: quotient-side verification plus a concrete
// spot-check (the default) against full concrete re-verification of
// every policy (CompressConcreteVerify). The instance is the
// concrete-side-dominated leaf-spine DC, where acceptance cost is the
// gap between the two.
func benchCompressVerify(b *testing.B, concrete bool) {
	h, ps := compressDCInstance(b)
	opts := core.DefaultOptions()
	opts.Compress = core.CompressOn
	opts.CompressConcreteVerify = concrete
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Repair(h, ps, opts)
		if err != nil || !res.Solved {
			b.Fatalf("repair failed: %v", err)
		}
		if res.Compressed == 0 {
			b.Fatalf("compression never engaged (fallbacks=%d)", res.CompressFallbacks)
		}
	}
}

func BenchmarkCompressVerifyQuotientOn(b *testing.B)  { benchCompressVerify(b, false) }
func BenchmarkCompressVerifyQuotientOff(b *testing.B) { benchCompressVerify(b, true) }

// BenchmarkHarcStateOfDelta measures the incremental pre-repair state
// derivation against the from-scratch build it replaces: one leaf's
// config "changes", and StateOfDelta recomputes only the process
// presences and per-TC graphs that device can influence, cloning the
// rest from the base state.
func BenchmarkHarcStateOfDelta(b *testing.B) {
	h, _ := compressDCInstance(b)
	base := harc.StateOf(h)
	changed := map[string]bool{h.Network.Devices()[0].Name: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := harc.StateOfDelta(h, base, changed); st == nil {
			b.Fatal("delta derivation bailed to a full rebuild")
		}
	}
}

// BenchmarkHarcStateOfFull is the from-scratch baseline for
// BenchmarkHarcStateOfDelta, on the same instance.
func BenchmarkHarcStateOfFull(b *testing.B) {
	h, _ := compressDCInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = harc.StateOf(h)
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkSubstrateSATRandom3SAT(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(int64(i)))
		s := sat.New()
		const nvars = 120
		for v := 0; v < nvars; v++ {
			s.NewVar()
		}
		for c := 0; c < 4*nvars; c++ {
			s.AddClause(
				sat.MkLit(sat.Var(r.Intn(nvars)), r.Intn(2) == 0),
				sat.MkLit(sat.Var(r.Intn(nvars)), r.Intn(2) == 0),
				sat.MkLit(sat.Var(r.Intn(nvars)), r.Intn(2) == 0),
			)
		}
		s.Solve()
	}
}

func BenchmarkSubstrateETGConstruction(b *testing.B) {
	inst, err := generate.FatTree(generate.FatTreeOptions{K: 4, PC3: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	n := inst.Network
	tcs := n.TrafficClasses()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slots := arc.Slots(n)
		arc.BuildTCETG(slots, tcs[i%len(tcs)])
	}
}

func BenchmarkSubstrateHARCBuild(b *testing.B) {
	inst, err := generate.FatTree(generate.FatTreeOptions{K: 4, PC3: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		harc.Build(inst.Network)
	}
}

func BenchmarkSubstrateParseExtract(b *testing.B) {
	texts := config.Figure2aConfigs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cfgs []*config.Config
		for name, text := range texts {
			c, err := config.Parse(name, text)
			if err != nil {
				b.Fatal(err)
			}
			cfgs = append(cfgs, c)
		}
		if _, err := config.Extract(cfgs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateFatTreeGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := generate.FatTree(generate.FatTreeOptions{K: 4, PC1: 2, PC3: 2, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateVerifyAllPolicies(b *testing.B) {
	inst, err := generate.DataCenter(generate.DCOptions{
		Name: "bench", Routers: 8, Subnets: 12, BlockedFrac: 0.3, Violations: 2, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	h := inst.Harc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		policy.Violations(h, inst.Policies)
	}
}

// --- cprd daemon benchmarks ---

// benchPost is the JSON POST helper shared by the server benchmarks.
func benchPost(b *testing.B, url, path string, body, out any) {
	b.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("%s status = %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		b.Fatal(err)
	}
}

func benchStatsz(b *testing.B, url string) server.Statsz {
	b.Helper()
	var sz server.Statsz
	resp, err := http.Get(url + "/statsz")
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&sz); err != nil {
		b.Fatal(err)
	}
	return sz
}

// BenchmarkServerRepairWarm measures a repair against an already-loaded
// session: after the single cold load, every iteration goes straight to
// the solver — no config parsing, no HARC build. The session solve cache
// is disabled so every iteration really re-encodes and re-solves (the
// replayed-repair regime is BenchmarkServerRepairChurn's subject).
// Compare with BenchmarkEndToEndPublicAPI, which pays Load on every
// iteration. The final statsz assertion proves the warm path never
// rebuilt.
func BenchmarkServerRepairWarm(b *testing.B) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var lr server.LoadResponse
	benchPost(b, ts.URL, "/v1/load", server.LoadRequest{Configs: config.Figure2aConfigs()}, &lr)
	const spec = "always-blocked S U\nalways-waypoint S T\nreachable S T 2\nprimary-path R T A,B,C\n"
	opts := cpr.OptionFlags{SolveCache: "off"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rr server.RepairResponse
		benchPost(b, ts.URL, "/v1/repair", server.RepairRequest{Session: lr.Session, Policies: spec, Options: opts}, &rr)
		if !rr.Solved {
			b.Fatal("repair unsolved")
		}
		if rr.Reused != 0 {
			b.Fatal("warm bench replayed a sub-problem despite solve_cache=off")
		}
	}
	b.StopTimer()

	if sz := benchStatsz(b, ts.URL); sz.Cache.Builds != 1 {
		b.Fatalf("builds = %d, want 1 (warm repairs must skip parse/build)", sz.Cache.Builds)
	}
}

// BenchmarkServerRepairChurn measures the incremental-repair regime:
// each iteration posts a one-device config delta (toggling an ACL on a
// device no policy traffic class crosses) and repairs the resulting
// session. After the first toggle cycle both content keys are cached
// with warm solve caches, so the steady state is one /v1/delta cache hit
// plus one /v1/repair that replays every sub-problem — no SAT solving.
// The target pinned by BENCH_baseline.json is ≥10× below
// BenchmarkServerRepairWarm's full re-solve.
func BenchmarkServerRepairChurn(b *testing.B) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	configs := config.Figure2aConfigs()
	var lr server.LoadResponse
	benchPost(b, ts.URL, "/v1/load", server.LoadRequest{Configs: configs}, &lr)
	const spec = "always-blocked S U\nalways-waypoint S T\nreachable S T 2\nprimary-path R T A,B,C\n"

	// Warm the base session's solve cache once, then alternate between
	// the original device C text and a variant with an extra ACL.
	var rr server.RepairResponse
	benchPost(b, ts.URL, "/v1/repair", server.RepairRequest{Session: lr.Session, Policies: spec}, &rr)
	if !rr.Solved {
		b.Fatal("warmup repair unsolved")
	}
	variants := [2]string{
		configs["C"] + "ip access-list extended CHURN\n deny ip 10.40.0.0 0.0.255.255 10.10.0.0 0.0.255.255\n permit ip any any\n!\n",
		configs["C"],
	}

	// One full toggle cycle before the timer builds both delta sessions
	// and warms their caches, so even a single timed iteration measures
	// the steady state rather than the first-toggle session build.
	session := lr.Session
	churn := func(i int) {
		var dr server.DeltaResponse
		benchPost(b, ts.URL, "/v1/delta", server.DeltaRequest{
			Session: session,
			Configs: map[string]string{"C": variants[i%2]},
		}, &dr)
		session = dr.Session
		var rr server.RepairResponse
		benchPost(b, ts.URL, "/v1/repair", server.RepairRequest{Session: session, Policies: spec}, &rr)
		if !rr.Solved {
			b.Fatal("churn repair unsolved")
		}
		if rr.Reused != len(rr.Problems) {
			b.Fatalf("churn repair reused %d of %d sub-problems, want all (the bench must measure replay, not re-solving)",
				rr.Reused, len(rr.Problems))
		}
	}
	for i := 0; i < 4; i++ {
		churn(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		churn(i)
	}
	b.StopTimer()

	sz := benchStatsz(b, ts.URL)
	if sz.Cache.Builds != 1 {
		b.Fatalf("builds = %d, want 1", sz.Cache.Builds)
	}
	// Only the first toggle of each variant derives a new session; all
	// later deltas hit the cache by content key.
	if sz.Cache.DeltaBuilds > 2 {
		b.Fatalf("delta builds = %d, want ≤2 (oscillating churn must hit the session cache)", sz.Cache.DeltaBuilds)
	}
}

// Sanity: the bench configuration still produces a verifiable repair.
func BenchmarkEndToEndPublicAPI(b *testing.B) {
	texts := config.Figure2aConfigs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := cpr.Load(texts)
		if err != nil {
			b.Fatal(err)
		}
		spec, err := sys.ParsePolicies(fmt.Sprintf("reachable S T %d\n", 2))
		if err != nil {
			b.Fatal(err)
		}
		rep, err := sys.Repair(spec, cpr.DefaultOptions())
		if err != nil || !rep.Solved() {
			b.Fatal("repair failed")
		}
	}
}
